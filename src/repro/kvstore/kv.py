"""A single key-value instance: data structure + simulated service."""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.calibration import RedisProfile
from repro.errors import KeyNotFoundError
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event


class KVTable:
    """An in-memory ordered-scan key-value table (keys: str, values: bytes).

    ``pscan`` (scan-with-prefix, §4.1.1) returns matching pairs in key
    order; the sorted key index is rebuilt lazily so bulk loads stay
    O(n log n) overall instead of O(n²).
    """

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self._sorted_keys: Optional[list[str]] = None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"key must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")
        if key not in self._data:
            self._sorted_keys = None
        self._data[key] = bytes(value)

    def get(self, key: str) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None

    def get_or_none(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def delete(self, key: str) -> None:
        try:
            del self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None
        self._sorted_keys = None

    def _index(self) -> list[str]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._data)
        return self._sorted_keys

    def pscan(
        self,
        prefix: str,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> list[tuple[str, bytes]]:
        """Scan keys with ``prefix`` in sorted order (the paper's *pscan*).

        ``cursor`` resumes a paginated scan: only keys strictly greater
        than it are returned, so passing the last key of one page yields
        the next page.  A bounded scan therefore never materializes more
        than ``limit`` pairs however large the prefix range is.
        """
        import bisect

        index = self._index()
        lo = bisect.bisect_left(index, prefix)
        if cursor is not None:
            lo = max(lo, bisect.bisect_right(index, cursor))
        out: list[tuple[str, bytes]] = []
        for i in range(lo, len(index)):
            key = index[i]
            if not key.startswith(prefix):
                break
            out.append((key, self._data[key]))
            if limit is not None and len(out) >= limit:
                break
        return out

    def pcount(self, prefix: str) -> int:
        """Number of keys under ``prefix``, without materializing them."""
        import bisect

        index = self._index()
        lo = bisect.bisect_left(index, prefix)
        if not prefix:
            return len(index) - lo
        # Upper bound: the smallest string greater than every key that
        # starts with the prefix (bump the last character).
        last = prefix[-1]
        if ord(last) < 0x10FFFF:
            hi = bisect.bisect_left(index, prefix[:-1] + chr(ord(last) + 1))
            return hi - lo
        count = 0
        for i in range(lo, len(index)):  # pragma: no cover - exotic prefix
            if not index[i].startswith(prefix):
                break
            count += 1
        return count

    def keys(self) -> list[str]:
        return list(self._index())

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys = None

    def load(self, pairs: Iterable[tuple[str, bytes]]) -> None:
        for k, v in pairs:
            self.put(k, v)


class KVInstance:
    """One KV server (e.g. one Redis instance) attached to a node."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        node: Node,
        name: str,
        qps: float | None = None,
        latency_s: float | None = None,
    ) -> None:
        self.env = env
        self.node = node
        self.name = name
        self.table = KVTable()
        profile = RedisProfile()
        qps = qps if qps is not None else profile.instance_qps
        latency_s = latency_s if latency_s is not None else profile.latency_s
        if qps <= 0:
            raise ValueError("qps must be positive")
        # Aggregate capacity `qps` with unloaded service latency
        # `latency_s` (workers derived via Little's law).
        self.endpoint = RpcEndpoint.for_capacity(
            env, fabric, node, name,
            handler=self._handle, qps=qps, latency_s=latency_s,
        )

    @property
    def recorder(self):
        """Attached observability recorder (None = disabled)."""
        return self.endpoint.recorder

    @recorder.setter
    def recorder(self, value) -> None:
        """Forward the recorder to the RPC endpoint, which times every
        KV call as queue vs service (``rpc_get``, ``rpc_pscan``, ...)."""
        self.endpoint.recorder = value

    def _handle(self, method: str, *args: Any) -> Any:
        if method == "get":
            return self.table.get(args[0])
        if method == "get_or_none":
            return self.table.get_or_none(args[0])
        if method == "put":
            self.table.put(args[0], args[1])
            return None
        if method == "delete":
            self.table.delete(args[0])
            return None
        if method == "pscan":
            return self.table.pscan(args[0], *args[1:])
        if method == "pcount":
            return self.table.pcount(args[0])
        if method == "size":
            return len(self.table)
        raise ValueError(f"unknown KV method: {method!r}")

    @property
    def up(self) -> bool:
        return self.endpoint.up

    def call(
        self, client: Node, method: str, *args: Any, **kw: Any
    ) -> Generator[Event, Any, Any]:
        """RPC into this instance from ``client`` (generator)."""
        return self.endpoint.call(client, method, *args, **kw)

    def crash_and_lose_data(self) -> None:
        """Simulate an instance crash that loses its in-memory contents."""
        self.table.clear()

    def restart(self) -> None:
        """Cold-start the instance after its node came back (§4.1.2 (a)).

        The store is in-memory, so a restart always begins empty —
        whatever pairs the crash lost stay lost until a metadata rebuild
        (:func:`repro.core.recovery.rebuild_dataset`) replays them.
        """
        self.table.clear()
        self.endpoint.restart()
