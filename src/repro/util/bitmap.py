"""Fixed-size bitmap used for chunk deletion tracking (§4.1.1).

Each data chunk carries a *deletion bitmap*: bit ``i`` set means the
``i``-th file in the chunk has been deleted (or superseded by a rewrite).
The bitmap is part of the chunk's key-value metadata and is serialized
into snapshot and recovery paths, so it must round-trip exactly.
"""

from __future__ import annotations

from typing import Iterator


class Bitmap:
    """A compact fixed-length bitmap backed by a bytearray."""

    __slots__ = ("_bits", "_size")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("bitmap size must be non-negative")
        self._size = size
        self._bits = bytearray((size + 7) // 8)

    def __len__(self) -> int:
        return self._size

    def _check(self, idx: int) -> int:
        if idx < 0:
            idx += self._size
        if not 0 <= idx < self._size:
            raise IndexError(f"bit index {idx} out of range for size {self._size}")
        return idx

    def set(self, idx: int) -> None:
        idx = self._check(idx)
        self._bits[idx >> 3] |= 1 << (idx & 7)

    def clear(self, idx: int) -> None:
        idx = self._check(idx)
        self._bits[idx >> 3] &= ~(1 << (idx & 7)) & 0xFF

    def get(self, idx: int) -> bool:
        idx = self._check(idx)
        return bool(self._bits[idx >> 3] & (1 << (idx & 7)))

    def __getitem__(self, idx: int) -> bool:
        return self.get(idx)

    def count(self) -> int:
        """Number of set bits."""
        return sum(byte.bit_count() for byte in self._bits)

    def any(self) -> bool:
        return any(self._bits)

    def all(self) -> bool:
        return self.count() == self._size

    def iter_set(self) -> Iterator[int]:
        """Yield indices of set bits in ascending order."""
        for i in range(self._size):
            if self._bits[i >> 3] & (1 << (i & 7)):
                yield i

    def iter_clear(self) -> Iterator[int]:
        """Yield indices of clear bits in ascending order."""
        for i in range(self._size):
            if not self._bits[i >> 3] & (1 << (i & 7)):
                yield i

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "Bitmap":
        expected = (size + 7) // 8
        if len(data) != expected:
            raise ValueError(
                f"bitmap payload is {len(data)} bytes; size {size} needs {expected}"
            )
        # Reject garbage in padding bits so round-trips are canonical.
        if size % 8 and data and data[-1] >> (size % 8):
            raise ValueError("bitmap has set bits beyond its declared size")
        bm = cls(size)
        bm._bits[:] = data
        return bm

    def copy(self) -> "Bitmap":
        bm = Bitmap(self._size)
        bm._bits[:] = self._bits
        return bm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._size == other._size and self._bits == other._bits

    def __hash__(self) -> int:  # bitmaps are mutable; forbid hashing
        raise TypeError("Bitmap is unhashable")

    def __repr__(self) -> str:
        return f"Bitmap(size={self._size}, set={self.count()})"
