"""Chunk-ID generation and codec (paper §4.1.2, Table 1).

A chunk ID is 16 bytes::

    bytes 0-3   creation timestamp, seconds, big-endian
    bytes 4-9   machine identifier (MAC address of the Ethernet interface)
    bytes 10-12 process ID
    bytes 13-15 per-process counter

Sorting chunk IDs therefore sorts chunks by creation time, which is what
metadata recovery relies on (§4.1.2, scenarios a and b): after losing the
in-memory key-value metadata, the server re-scans data chunks *in the
order they were written* — either from a known timestamp (scenario a) or
from the beginning (scenario b).

The paper stores the printable form in the object store ("converted into
printable characters (e.g., using base64)").  Standard base64's alphabet
is **not** lexicographically order-preserving, so this implementation
defaults to RFC 4648 *base32hex* (alphabet ``0-9 A-V``), which is — the
encoded string order equals the byte order, so a plain sorted listing of
the object store yields chunks in written order.  A base64 codec is also
provided for compatibility; it requires decoding before sorting.
"""

from __future__ import annotations

import base64
import hashlib
import os
import threading
import uuid
from dataclasses import dataclass
from typing import Iterator

_TS_BYTES = 4
_MACHINE_BYTES = 6
_PID_BYTES = 3
_COUNTER_BYTES = 3
CHUNK_ID_BYTES = _TS_BYTES + _MACHINE_BYTES + _PID_BYTES + _COUNTER_BYTES

#: Maximum IDs one process can mint per second (3-byte counter):
#: the paper's "more than 16.7 million unique chunk IDs per second".
MAX_IDS_PER_SECOND = 1 << (8 * _COUNTER_BYTES)

#: Length of a base32hex-encoded 16-byte ID (no padding): ceil(16*8/5).
ENCODED_LENGTH = 26


@dataclass(frozen=True, order=True)
class ChunkId:
    """An immutable, totally-ordered chunk identifier.

    Ordering compares the raw 16 bytes, i.e. (timestamp, machine, pid,
    counter) lexicographically — the written order required for recovery.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != CHUNK_ID_BYTES:
            raise ValueError(
                f"chunk id must be {CHUNK_ID_BYTES} bytes, got {len(self.raw)}"
            )

    @property
    def timestamp(self) -> int:
        """Creation time in whole seconds."""
        return int.from_bytes(self.raw[0:4], "big")

    @property
    def machine(self) -> bytes:
        """Six-byte machine identifier (MAC address)."""
        return self.raw[4:10]

    @property
    def pid(self) -> int:
        return int.from_bytes(self.raw[10:13], "big")

    @property
    def counter(self) -> int:
        return int.from_bytes(self.raw[13:16], "big")

    def encode(self) -> str:
        """Order-preserving printable encoding (base32hex, lowercase-free)."""
        return base64.b32hexencode(self.raw).decode("ascii").rstrip("=")

    def encode_base64(self) -> str:
        """Paper-style base64url encoding (NOT order-preserving)."""
        return base64.urlsafe_b64encode(self.raw).decode("ascii").rstrip("=")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.encode()

    @classmethod
    def from_parts(
        cls, timestamp: int, machine: bytes, pid: int, counter: int
    ) -> "ChunkId":
        if not 0 <= timestamp < 1 << 32:
            raise ValueError(f"timestamp out of range: {timestamp}")
        if len(machine) != _MACHINE_BYTES:
            raise ValueError(f"machine id must be {_MACHINE_BYTES} bytes")
        if not 0 <= pid < 1 << (8 * _PID_BYTES):
            raise ValueError(f"pid out of range: {pid}")
        if not 0 <= counter < 1 << (8 * _COUNTER_BYTES):
            raise ValueError(f"counter out of range: {counter}")
        raw = (
            timestamp.to_bytes(_TS_BYTES, "big")
            + machine
            + pid.to_bytes(_PID_BYTES, "big")
            + counter.to_bytes(_COUNTER_BYTES, "big")
        )
        return cls(raw)


def decode_chunk_id(encoded: str) -> ChunkId:
    """Decode the order-preserving base32hex form back to a :class:`ChunkId`."""
    pad = "=" * (-len(encoded) % 8)
    try:
        raw = base64.b32hexdecode(encoded + pad)
    except Exception as exc:  # binascii.Error subclasses ValueError
        raise ValueError(f"invalid chunk id encoding: {encoded!r}") from exc
    return ChunkId(raw)


def _local_machine_id() -> bytes:
    """Best-effort 6-byte machine identifier (MAC via uuid.getnode)."""
    return uuid.getnode().to_bytes(6, "big")


_instance_counter = 0
_instance_lock = threading.Lock()


def _next_default_pid() -> int:
    """A unique default 'process id' per generator instance.

    Real DIESEL runs one generator per OS process, so os.getpid() is
    unique.  Inside one simulation many *simulated* processes share the
    interpreter's pid; mixing in a per-instance counter preserves the
    Table 1 uniqueness guarantee across simulated writers.
    """
    global _instance_counter
    with _instance_lock:
        _instance_counter += 1
        return (os.getpid() + _instance_counter) % (1 << (8 * _PID_BYTES))


def sim_id_generator(
    name: str, clock: "callable[[], float] | None" = None
) -> "ChunkIdGenerator":
    """A :class:`ChunkIdGenerator` whose machine/pid derive from ``name``.

    The default generator identifies the writer by host MAC and OS pid —
    correct for real deployments, but it makes chunk IDs (and anything
    hashed from them, e.g. per-chunk compression ratios) vary from one
    interpreter run to the next.  Simulated writers have a stable name
    instead, so hashing the name into the machine/pid fields keeps the
    Table 1 uniqueness guarantee across writers *and* makes every sim
    run bit-identical.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=9).digest()
    return ChunkIdGenerator(
        machine=digest[:_MACHINE_BYTES],
        pid=int.from_bytes(digest[_MACHINE_BYTES:], "big"),
        clock=clock,
    )


class ChunkIdGenerator:
    """Mints monotonically increasing chunk IDs for one writer process.

    Thread-safe.  A simulated clock callable may be supplied so that IDs
    minted inside the discrete-event simulation are ordered by *simulated*
    time; by default IDs use a deterministic logical second counter so
    tests are reproducible without wall-clock dependence.
    """

    def __init__(
        self,
        machine: bytes | None = None,
        pid: int | None = None,
        clock: "callable[[], float] | None" = None,
    ) -> None:
        self._machine = machine if machine is not None else _local_machine_id()
        raw_pid = pid if pid is not None else _next_default_pid()
        self._pid = raw_pid % (1 << (8 * _PID_BYTES))
        self._clock = clock
        self._lock = threading.Lock()
        self._last_second = -1
        self._counter = 0
        self._logical_second = 0

    def _current_second(self) -> int:
        if self._clock is not None:
            return int(self._clock())
        # Deterministic logical time: advance when the counter would wrap.
        return self._logical_second

    def next(self) -> ChunkId:
        """Mint the next ID; never returns duplicates within this process."""
        with self._lock:
            second = self._current_second()
            if second < self._last_second:
                # Clock went backwards (possible with simulated clocks that
                # are reset); keep IDs monotone by staying on the old second.
                second = self._last_second
            if second != self._last_second:
                self._last_second = second
                self._counter = 0
            if self._counter >= MAX_IDS_PER_SECOND:
                # Counter exhausted within one second: borrow the next one.
                second += 1
                self._last_second = second
                self._counter = 0
                if self._clock is None:
                    self._logical_second = second
            cid = ChunkId.from_parts(second, self._machine, self._pid, self._counter)
            self._counter += 1
            return cid

    def take(self, n: int) -> Iterator[ChunkId]:
        """Yield ``n`` fresh IDs."""
        for _ in range(n):
            yield self.next()
