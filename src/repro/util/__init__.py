"""Shared utilities: chunk IDs, hashing, bitmaps, paths, size units."""

from repro.util.bitmap import Bitmap
from repro.util.hashing import ConsistentHashRing, fnv1a_64, stable_hash
from repro.util.ids import ChunkId, ChunkIdGenerator, decode_chunk_id
from repro.util.pathutil import (
    basename,
    dirname,
    iter_ancestors,
    join,
    normalize,
    split,
)
from repro.util.units import format_bytes, format_rate, parse_size

__all__ = [
    "Bitmap",
    "ChunkId",
    "ChunkIdGenerator",
    "ConsistentHashRing",
    "basename",
    "decode_chunk_id",
    "dirname",
    "fnv1a_64",
    "format_bytes",
    "format_rate",
    "iter_ancestors",
    "join",
    "normalize",
    "parse_size",
    "split",
    "stable_hash",
]
