"""Byte-size parsing and human-readable formatting."""

from __future__ import annotations

import re

_UNITS = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "t": 1024**4,
    "tb": 1024**4,
    "tib": 1024**4,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a human size like ``"4MB"``, ``"128 KiB"`` or ``4096`` to bytes.

    >>> parse_size("4MB")
    4194304
    >>> parse_size(512)
    512
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    value, unit = m.groups()
    unit = unit.lower()
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return int(float(value) * _UNITS[unit])


def format_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit.

    >>> format_bytes(4 * 1024 * 1024)
    '4.00 MiB'
    """
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(n)} B"
            return f"{n:.2f} {unit}"
        n /= 1024
    raise AssertionError("unreachable")


def format_rate(bytes_per_s: float) -> str:
    """Format a bandwidth as e.g. ``'3.30 GiB/s'``."""
    return format_bytes(bytes_per_s) + "/s"
