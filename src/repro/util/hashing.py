"""Stable hashing and a consistent-hash ring.

The Memcached baseline uses consistent hashing (via twemproxy in the
paper, Karger et al. STOC'97); the DIESEL metadata schema uses stable
directory hashes for prefix scans (§4.1.1).  Python's built-in ``hash``
is salted per process, so everything here is built on FNV-1a, which is
deterministic across runs — a requirement for reproducible experiments.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(data: bytes | str) -> int:
    """64-bit FNV-1a hash, deterministic across processes."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def mix64(h: int) -> int:
    """splitmix64 finalizer: full-avalanche mixing of a 64-bit value.

    FNV-1a alone has weak high-bit avalanche on short ASCII keys, which
    clusters consistent-hash ring points badly; the finalizer fixes that.
    """
    h &= _MASK64
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return h


def stable_hash(data: bytes | str, buckets: int | None = None) -> int:
    """Deterministic well-mixed hash, optionally reduced modulo ``buckets``."""
    h = mix64(fnv1a_64(data))
    if buckets is not None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        return h % buckets
    return h


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes.

    Keys map to the first node clockwise from their hash point.  Removing
    a node only remaps the keys it owned — the property the Memcached
    baseline depends on when a node fails (Fig 6: misses appear only for
    the dead node's share of the keyspace).
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 128) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self._replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node already in ring: {node!r}")
        self._nodes.add(node)
        for i in range(self._replicas):
            point = mix64(fnv1a_64(f"{node}#{i}"))
            idx = bisect.bisect(self._hashes, point)
            # Extremely unlikely 64-bit collision between distinct vnodes;
            # nudge deterministically rather than corrupt the ring.
            while idx < len(self._hashes) and self._hashes[idx] == point:
                point = (point + 1) & _MASK64
                idx = bisect.bisect(self._hashes, point)
            self._ring.insert(idx, (point, node))
            self._hashes.insert(idx, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node not in ring: {node!r}")
        self._nodes.remove(node)
        keep = [(h, n) for (h, n) in self._ring if n != node]
        self._ring = keep
        self._hashes = [h for h, _ in keep]

    def lookup(self, key: bytes | str) -> str:
        """Return the node owning ``key``."""
        if not self._ring:
            raise LookupError("consistent hash ring is empty")
        point = mix64(fnv1a_64(key))
        idx = bisect.bisect(self._hashes, point)
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def partition(self, keys: Sequence[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning node (utility for tests/experiments)."""
        out: dict[str, list[str]] = {node: [] for node in self._nodes}
        for key in keys:
            out[self.lookup(key)].append(key)
        return out
