"""Dataset path handling.

DIESEL stores *full file names* in key-value pairs and rebuilds the
directory hierarchy from them on demand (§4.1.1, §4.1.3).  Paths inside a
dataset are absolute, ``/``-separated, with no ``.``/``..`` components —
this module canonicalizes user input into that form.
"""

from __future__ import annotations

from typing import Iterator


def normalize(path: str) -> str:
    """Canonicalize ``path`` to ``/a/b/c`` form.

    >>> normalize("a//b/./c")
    '/a/b/c'
    >>> normalize("/")
    '/'
    """
    if not isinstance(path, str):
        raise TypeError(f"path must be str, got {type(path).__name__}")
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            raise ValueError(f"path may not contain '..': {path!r}")
        parts.append(part)
    return "/" + "/".join(parts)


def split(path: str) -> tuple[str, ...]:
    """Split a normalized path into components (root → empty tuple)."""
    norm = normalize(path)
    if norm == "/":
        return ()
    return tuple(norm[1:].split("/"))


def join(*parts: str) -> str:
    """Join components into a normalized path."""
    return normalize("/".join(parts))


def dirname(path: str) -> str:
    """Parent directory of a normalized path (root's parent is root)."""
    comps = split(path)
    if len(comps) <= 1:
        return "/"
    return "/" + "/".join(comps[:-1])


def basename(path: str) -> str:
    """Final component ('' for root)."""
    comps = split(path)
    return comps[-1] if comps else ""


def iter_ancestors(path: str) -> Iterator[str]:
    """Yield every proper ancestor directory, nearest first, ending at '/'.

    >>> list(iter_ancestors("/a/b/c"))
    ['/a/b', '/a', '/']
    """
    comps = split(path)
    for i in range(len(comps) - 1, 0, -1):
        yield "/" + "/".join(comps[:i])
    if comps:
        yield "/"


def is_under(path: str, directory: str) -> bool:
    """True if ``path`` is strictly inside ``directory``."""
    d = normalize(directory)
    p = normalize(path)
    if d == "/":
        return p != "/"
    return p.startswith(d + "/")
