"""repro — a from-scratch reproduction of DIESEL (Wang et al., ICPP 2020).

DIESEL is a dataset-based distributed storage and caching system for
large-scale deep-learning training.  This package implements the full
system and every substrate it depends on in Python:

* :mod:`repro.core` — the DIESEL contribution: self-contained chunks,
  decoupled metadata + snapshots, the task-grained distributed cache,
  chunk-wise shuffle, the libDIESEL API and a FUSE-style facade;
* :mod:`repro.sim`, :mod:`repro.cluster`, :mod:`repro.rpc` — a
  discrete-event-simulated cluster (devices, network, RPC) so performance
  experiments reproduce the paper's contention shapes;
* :mod:`repro.kvstore`, :mod:`repro.objectstore` — the Redis-cluster and
  Ceph-like storage substrates;
* :mod:`repro.baselines` — Lustre, Memcached-cluster and local-XFS
  comparators;
* :mod:`repro.dlt` — deep-learning-training workload models and a real
  numpy SGD trainer for the shuffle-accuracy experiments;
* :mod:`repro.workloads` — synthetic ImageNet-1K / CIFAR-10-like dataset
  generators;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation (see EXPERIMENTS.md).

Quickstart: see ``examples/quickstart.py``.
"""

from repro.calibration import Calibration, DEFAULT
from repro.core import (
    Chunk,
    ChunkBuilder,
    DieselClient,
    DieselConfig,
    DieselServer,
    FuseMount,
    MetadataSnapshot,
    SnapshotIndex,
    TaskCache,
    chunkwise_shuffle,
    full_shuffle,
)
from repro.core.client import SyncDieselClient
from repro.sim import Environment

__version__ = "1.10.0"

__all__ = [
    "Calibration",
    "Chunk",
    "ChunkBuilder",
    "DEFAULT",
    "DieselClient",
    "DieselConfig",
    "DieselServer",
    "Environment",
    "FuseMount",
    "MetadataSnapshot",
    "SnapshotIndex",
    "SyncDieselClient",
    "TaskCache",
    "chunkwise_shuffle",
    "full_shuffle",
    "__version__",
]
