"""Pluggable chunk-residency stores: RAM tier + simulated-NVMe disk tier.

The task cache (:mod:`repro.core.dist_cache`) and the shared chunk tier
(:mod:`repro.core.shared_cache`) both used to hold resident chunks in a
bare in-memory dict charged against the node's memory ``Container`` —
which made "dataset larger than aggregate RAM" inexpressible: once
memory ran out, every further chunk stayed server-resident forever.
This module extracts that residency decision behind one interface with
two backends, selected by ``DieselConfig.cache_store``:

* :class:`RamStore` (``"ram"``) — the legacy behaviour, bit-compatible:
  chunks live in node memory in LRU order; a chunk that does not fit is
  refused (``put`` returns ``None``) and stays server-resident.
* :class:`TieredStore` (``"tiered"``) — adds a simulated node-local
  NVMe tier (a :class:`~repro.cluster.devices.Device` queueing station,
  latency/bandwidth from ``disk_latency_s`` / ``disk_bandwidth_bps``,
  capacity from ``disk_tier_bytes``).  Admissions overflow RAM→disk,
  cold chunks are *demoted* to disk under memory pressure
  (:meth:`~TieredStore.displace`), and disk-resident chunks are
  *promoted* back to RAM on access when memory allows — otherwise the
  read streams through without displacing the RAM working set.

Optional **transparent chunk compression** (``chunk_compression=True``,
FanStore-style) shrinks what the disk tier stores and transfers: each
chunk gets a deterministic per-chunk ratio seeded from its key
(:func:`compression_ratio`), writes pay a modeled compress cost and
reads a (much cheaper) decompress cost — trading CPU time for capacity
and disk bandwidth.  Chunk *payload bytes are never transformed*; only
the simulated costs and stored-byte accounting change, so checksums and
reads behave identically either way.

Both stores publish :class:`ChunkStoreStats` and emit ``tier_hit``
(ram/disk), ``tier_promote`` / ``tier_demote`` / ``tier_compress``
spans through an attached :class:`~repro.obs.SpanRecorder`.

Crash semantics mirror real hardware: :meth:`~RamStore.crash` forgets
RAM without returning memory (the container died with the node), while
a :class:`TieredStore`'s disk contents *survive* — recovery re-admits
survivors by reference instead of re-fetching them from the backend.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cluster.devices import Device
from repro.core.chunk import Chunk
from repro.sim.engine import Environment, Event

#: Selectable store backends (``DieselConfig.cache_store``).
STORE_KINDS = ("ram", "tiered")

#: Default per-operation latency of the simulated node-local NVMe tier.
#: Higher than the storage cluster's 27.7 µs (Table 2): one commodity
#: drive behind a filesystem, not a striped all-flash array.
DEFAULT_DISK_LATENCY_S = 8e-05
#: Default streaming bandwidth of the disk tier: 2 GiB/s — a single
#: local NVMe, deliberately slower than the 3.3 GB/s aggregated
#: storage-cluster profile so the tier ordering RAM > disk > backend
#: holds.
DEFAULT_DISK_BANDWIDTH_BPS = 2147483648.0
#: Simulated compressor throughput (LZ4-class: fast, asymmetric).
COMPRESS_BPS = 1.5 * 2**30
#: Simulated decompressor throughput (decompression is ~4× cheaper).
DECOMPRESS_BPS = 6.0 * 2**30
#: Per-chunk compression-ratio band.  Packed small-file datasets (JPEG
#: + labels + headers) compress unevenly; FanStore reports ~1.4–3.6×
#: across TensorFlow training sets.
MIN_COMPRESSION_RATIO = 1.4
MAX_COMPRESSION_RATIO = 3.6


def compression_ratio(key: str, seed: int = 0) -> float:
    """Deterministic per-chunk compression ratio in [1.4, 3.6].

    Seeded from the chunk key via ``zlib.crc32`` — *not* the builtin
    ``hash()``, which is process-seeded and would break run-to-run and
    scheduler-variant determinism.
    """
    h = zlib.crc32(f"{seed}:{key}".encode())
    frac = (h % 1000) / 999.0
    return MIN_COMPRESSION_RATIO + frac * (
        MAX_COMPRESSION_RATIO - MIN_COMPRESSION_RATIO
    )


def make_spec(
    cache_store: str = "ram",
    disk_tier_bytes: int = 0,
    disk_latency_s: float = DEFAULT_DISK_LATENCY_S,
    disk_bandwidth_bps: float = DEFAULT_DISK_BANDWIDTH_BPS,
    chunk_compression: bool = False,
    compression_seed: int = 0,
) -> Dict[str, Any]:
    """Validate store parameters into a spec dict for :func:`make_store`.

    Raises ``ValueError`` on an invalid combination (callers that need a
    :class:`~repro.errors.DieselError` wrap this themselves).
    """
    if cache_store not in STORE_KINDS:
        raise ValueError(
            f"cache_store must be one of {STORE_KINDS}, got {cache_store!r}"
        )
    if disk_tier_bytes < 0:
        raise ValueError("disk_tier_bytes must be >= 0 (0 = unbounded)")
    if disk_latency_s < 0:
        raise ValueError("disk_latency_s must be >= 0")
    if disk_bandwidth_bps <= 0:
        raise ValueError("disk_bandwidth_bps must be > 0")
    return {
        "kind": cache_store,
        "disk_tier_bytes": disk_tier_bytes,
        "disk_latency_s": disk_latency_s,
        "disk_bandwidth_bps": disk_bandwidth_bps,
        "chunk_compression": chunk_compression,
        "compression_seed": compression_seed,
    }


def make_store(
    env: Environment,
    node,
    spec: Optional[Dict[str, Any]] = None,
    on_evict: Optional[Callable[[str], None]] = None,
) -> "RamStore":
    """Build the store a spec describes (``None`` → plain RAM store)."""
    spec = spec or {"kind": "ram"}
    kind = spec.get("kind", "ram")
    if kind == "ram":
        return RamStore(env, node, on_evict=on_evict)
    if kind == "tiered":
        return TieredStore(
            env,
            node,
            capacity_bytes=spec.get("disk_tier_bytes", 0),
            disk_latency_s=spec.get("disk_latency_s", DEFAULT_DISK_LATENCY_S),
            disk_bandwidth_bps=spec.get(
                "disk_bandwidth_bps", DEFAULT_DISK_BANDWIDTH_BPS
            ),
            compression=spec.get("chunk_compression", False),
            compression_seed=spec.get("compression_seed", 0),
            on_evict=on_evict,
        )
    raise ValueError(f"unknown chunk store kind {kind!r}")


@dataclass(slots=True)
class ChunkStoreStats:
    """Tier counters and residency gauges (the bench-reporting seam).

    Cumulative counters move as the store runs; the gauge fields are
    refreshed on every :attr:`RamStore.stats` access.
    """

    #: Lookups served from the RAM tier.
    ram_hits: int = 0
    #: Lookups served from the disk tier (read-through or promotion).
    disk_hits: int = 0
    #: Disk-resident chunks moved back to RAM on access.
    promotions: int = 0
    #: RAM-resident chunks pushed to disk under memory pressure.
    demotions: int = 0
    #: Admissions that went straight to disk (RAM could not cover them).
    disk_admits: int = 0
    #: Chunks dropped from the disk tier to make room (capacity bound).
    disk_evictions: int = 0
    #: Chunks compressed on their way to disk.
    compress_ops: int = 0
    bytes_demoted: int = 0
    bytes_promoted: int = 0
    #: Gauges (refreshed on stats access).  ``disk_bytes`` is logical
    #: chunk bytes; ``disk_stored_bytes`` is post-compression on-disk.
    ram_bytes: int = 0
    disk_bytes: int = 0
    disk_stored_bytes: int = 0
    chunks_ram: int = 0
    chunks_disk: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class RamStore:
    """RAM-only chunk residency (the legacy behaviour, bit-compatible).

    Chunks are charged against ``node.memory`` and kept in LRU order.
    All cost-bearing methods (``put`` / ``load`` / ``displace``) are
    generators so both backends share one calling convention; for the
    RAM store only ``put`` ever yields (the memory ``Container.get``).
    """

    kind = "ram"

    def __init__(self, env: Environment, node, on_evict=None) -> None:
        self.env = env
        self.node = node
        #: key → (chunk, nbytes) in LRU order (oldest first).
        self._ram: "OrderedDict[str, Tuple[Chunk, int]]" = OrderedDict()
        self._ram_bytes = 0
        #: Called with the key whenever the store drops a chunk from
        #: every tier on its own initiative (disk-capacity eviction) —
        #: lets the owner drop its metadata in step.
        self.on_evict = on_evict
        self._stats = ChunkStoreStats()
        #: Attached observability recorder (None = disabled).
        self.recorder = None

    # ------------------------------------------------------------- inspection
    @property
    def stats(self) -> ChunkStoreStats:
        """Counters with the residency gauges refreshed."""
        s = self._stats
        s.ram_bytes = self._ram_bytes
        s.chunks_ram = len(self._ram)
        return s

    @property
    def count(self) -> int:
        """Resident chunks across all tiers."""
        return len(self._ram)

    def contains(self, key: str) -> bool:
        return key in self._ram

    def tier_of(self, key: str) -> Optional[str]:
        """``"ram"`` / ``"disk"`` / ``None``."""
        return "ram" if key in self._ram else None

    def nbytes_of(self, key: str) -> int:
        item = self._ram.get(key)
        return item[1] if item is not None else 0

    def chunk_object(self, key: str) -> Optional[Chunk]:
        """The resident Chunk object on any tier — bookkeeping only (no
        touch, no cost); cost-bearing reads go through :meth:`load`."""
        item = self._ram.get(key)
        return item[0] if item is not None else None

    def keys(self) -> List[str]:
        return list(self._ram)

    def ram_lru(self) -> List[str]:
        """RAM-resident keys, least-recently-used first (a snapshot —
        safe to displace while iterating)."""
        return list(self._ram)

    # ------------------------------------------------------------ cheap reads
    def get(self, key: str) -> Optional[Tuple[Chunk, int]]:
        """RAM-tier lookup: free (a memory copy), touches LRU order.

        Returns ``(chunk, nbytes)`` or ``None`` when the chunk is not
        RAM-resident — disk-resident chunks are *not* served here; use
        :meth:`load` (which charges the disk read) for those.
        """
        item = self._ram.get(key)
        if item is None:
            return None
        self._ram.move_to_end(key)
        self._stats.ram_hits += 1
        rec = self.recorder
        if rec is not None:
            rec.count("tier_hit", "ram")
        return item

    def touch(self, key: str) -> None:
        """Refresh a chunk's LRU recency without serving it."""
        if key in self._ram:
            self._ram.move_to_end(key)

    # -------------------------------------------------------------- admission
    def put(
        self, key: str, chunk: Chunk, nbytes: int, evictable=None
    ) -> Generator[Event, Any, Optional[str]]:
        """Admit a chunk; returns the tier it landed on or ``None``.

        The RAM store refuses (``None``) when node memory cannot cover
        the chunk *right now* — callers free memory first (the shared
        tier displaces victims, see ``evictable`` on the tiered store).
        """
        if self.node.memory.level < nbytes:
            return None
        yield self.node.memory.get(nbytes)
        self._ram[key] = (chunk, nbytes)
        self._ram_bytes += nbytes
        return "ram"

    def load(
        self, key: str
    ) -> Generator[Event, Any, Optional[Tuple[Chunk, int]]]:
        """Cost-charging lookup across all tiers (generator).

        RAM store: identical to :meth:`get` (never yields).
        """
        return self.get(key)
        yield  # pragma: no cover - marks this function as a generator

    def displace(
        self, key: str, evictable=None
    ) -> Generator[Event, Any, str]:
        """Push a RAM-resident chunk out of memory.

        The RAM store can only *evict* (drop + return memory); the
        tiered store demotes to disk when the disk tier has room.
        Returns where the chunk ended up (``"evicted"`` here).
        """
        self.drop(key)
        return "evicted"
        yield  # pragma: no cover - marks this function as a generator

    # ---------------------------------------------------------------- removal
    def drop(self, key: str) -> None:
        """Forget a chunk, returning its memory if it was RAM-resident."""
        item = self._ram.pop(key, None)
        if item is not None:
            self._ram_bytes -= item[1]
            if self.node.alive:
                self.node.memory.put(item[1])

    def clear(self) -> None:
        """Forget everything, returning RAM (graceful teardown)."""
        for key in list(self._ram):
            self.drop(key)

    def crash(self) -> int:
        """Node died: forget RAM *without* returning memory (the memory
        container died with the node).  Returns chunks lost."""
        n = len(self._ram)
        self._ram.clear()
        self._ram_bytes = 0
        return n


class TieredStore(RamStore):
    """RAM + simulated-NVMe tiers with optional transparent compression.

    Placement policy:

    * :meth:`put` fills RAM first; when memory cannot cover the chunk
      it overflows to disk (paying compress + device write), and only
      refuses when the disk tier is full of unevictable chunks too.
    * :meth:`displace` *demotes* RAM→disk under memory pressure instead
      of dropping, so a cold chunk costs a disk read later — not a full
      backend re-fetch.
    * :meth:`load` serves disk-resident chunks by charging a device
      read (+ decompress); when node memory allows, the chunk is
      *promoted* back to RAM, otherwise it streams through and stays
      disk-resident (a scan larger than RAM cannot thrash the tier).

    Concurrent promote/demote of one chunk is single-flighted through
    ``_moving``: the second mover waits for the first and then re-reads
    the (settled) tier state instead of racing the byte accounting.
    Reads are chunk-granular — one file read from a disk-resident chunk
    charges the whole stored chunk, the same unit the backend fetch
    path uses.
    """

    kind = "tiered"

    def __init__(
        self,
        env: Environment,
        node,
        capacity_bytes: int = 0,
        disk_latency_s: float = DEFAULT_DISK_LATENCY_S,
        disk_bandwidth_bps: float = DEFAULT_DISK_BANDWIDTH_BPS,
        compression: bool = False,
        compression_seed: int = 0,
        on_evict=None,
    ) -> None:
        super().__init__(env, node, on_evict=on_evict)
        #: Disk-tier capacity in *stored* bytes (0 = unbounded).
        self.capacity_bytes = capacity_bytes
        self.compression = compression
        self.compression_seed = compression_seed
        self.device = Device(
            env,
            f"nvme:{node.name}",
            disk_latency_s,
            disk_bandwidth_bps,
            queue_depth=4,
        )
        #: key → (chunk, nbytes, stored_bytes) in LRU order.
        self._disk: "OrderedDict[str, Tuple[Chunk, int, int]]" = OrderedDict()
        self._disk_bytes = 0
        self._disk_stored = 0
        #: Promote/demote single-flight: key → completion event.
        self._moving: Dict[str, Event] = {}

    # ------------------------------------------------------------- inspection
    @property
    def stats(self) -> ChunkStoreStats:
        s = super().stats
        s.disk_bytes = self._disk_bytes
        s.disk_stored_bytes = self._disk_stored
        s.chunks_disk = len(self._disk)
        return s

    @property
    def count(self) -> int:
        return len(self._ram) + len(self._disk)

    def contains(self, key: str) -> bool:
        return key in self._ram or key in self._disk

    def tier_of(self, key: str) -> Optional[str]:
        if key in self._ram:
            return "ram"
        if key in self._disk:
            return "disk"
        return None

    def nbytes_of(self, key: str) -> int:
        item = self._ram.get(key)
        if item is not None:
            return item[1]
        entry = self._disk.get(key)
        return entry[1] if entry is not None else 0

    def chunk_object(self, key: str) -> Optional[Chunk]:
        item = self._ram.get(key)
        if item is not None:
            return item[0]
        entry = self._disk.get(key)
        return entry[0] if entry is not None else None

    def keys(self) -> List[str]:
        return list(self._ram) + list(self._disk)

    def stored_size(self, key: str, nbytes: int) -> int:
        """On-disk footprint of a chunk (post-compression when enabled)."""
        if not self.compression:
            return nbytes
        ratio = compression_ratio(key, self.compression_seed)
        return max(1, int(nbytes / ratio))

    # -------------------------------------------------------------- admission
    def _fit_disk(self, stored: int, evictable) -> bool:
        """Make room on the disk tier, LRU-evicting allowed victims."""
        if self.capacity_bytes <= 0:
            return True
        if stored > self.capacity_bytes:
            return False
        while self._disk_stored + stored > self.capacity_bytes:
            victim = None
            for key in self._disk:
                if key in self._moving:
                    continue
                if evictable is None or evictable(key):
                    victim = key
                    break
            if victim is None:
                return False
            self._drop_disk(victim)
            self._stats.disk_evictions += 1
            rec = self.recorder
            if rec is not None:
                rec.count("tier_evict", "disk")
            if self.on_evict is not None:
                self.on_evict(victim)
        return True

    def _write_disk(
        self, key: str, chunk: Chunk, nbytes: int, stored: int
    ) -> Generator[Event, Any, None]:
        """Charge the compress + device-write cost and file the chunk."""
        if self.compression:
            yield self.env.timeout(nbytes / COMPRESS_BPS)
            self._stats.compress_ops += 1
            rec = self.recorder
            if rec is not None:
                rec.count("tier_compress", "disk")
        yield from self.device.write(stored)
        self._disk[key] = (chunk, nbytes, stored)
        self._disk_bytes += nbytes
        self._disk_stored += stored

    def put(
        self, key: str, chunk: Chunk, nbytes: int, evictable=None
    ) -> Generator[Event, Any, Optional[str]]:
        """Admit a chunk: RAM if memory covers it, else overflow to disk.

        ``evictable(key) -> bool`` gates which disk-resident chunks may
        be LRU-evicted for capacity (``None`` = any).  Returns the tier
        the chunk landed on, or ``None`` when both tiers refused.
        """
        if self.node.memory.level >= nbytes:
            yield self.node.memory.get(nbytes)
            self._ram[key] = (chunk, nbytes)
            self._ram_bytes += nbytes
            return "ram"
        stored = self.stored_size(key, nbytes)
        if not self._fit_disk(stored, evictable):
            return None
        yield from self._write_disk(key, chunk, nbytes, stored)
        self._stats.disk_admits += 1
        rec = self.recorder
        if rec is not None:
            rec.count("tier_admit", "disk")
        return "disk"

    # ------------------------------------------------------- promote / demote
    def load(
        self, key: str
    ) -> Generator[Event, Any, Optional[Tuple[Chunk, int]]]:
        """Serve a chunk from whichever tier holds it, charging costs.

        RAM: free.  Disk: one device read of the stored bytes plus the
        decompress cost; the chunk is promoted to RAM when node memory
        covers it *after* the read (memory may have filled meanwhile),
        else it stays disk-resident (read-through).
        """
        got = self.get(key)
        if got is not None:
            return got
        while key in self._moving:
            yield self._moving[key]
            got = self.get(key)
            if got is not None:
                return got
        entry = self._disk.get(key)
        if entry is None:
            return None
        chunk, nbytes, stored = entry
        self._disk.move_to_end(key)
        done = self.env.event()
        self._moving[key] = done
        try:
            t0 = self.env.now
            yield from self.device.read(stored)
            if self.compression:
                yield self.env.timeout(nbytes / DECOMPRESS_BPS)
            self._stats.disk_hits += 1
            rec = self.recorder
            if rec is not None:
                rec.count("tier_hit", "disk")
            if self.node.alive and self.node.memory.level >= nbytes:
                yield self.node.memory.get(nbytes)
                self._drop_disk(key)
                self._ram[key] = (chunk, nbytes)
                self._ram_bytes += nbytes
                self._stats.promotions += 1
                self._stats.bytes_promoted += nbytes
                if rec is not None:
                    rec.record("tier_promote", "disk",
                               self.env.now - t0, nbytes=nbytes)
            return chunk, nbytes
        finally:
            del self._moving[key]
            done.succeed()

    def displace(
        self, key: str, evictable=None
    ) -> Generator[Event, Any, str]:
        """Demote a RAM-resident chunk to disk (evict only as last resort).

        Single-flighted per key: racing a concurrent promote/demote of
        the same chunk waits for it to settle, then reports the settled
        tier.  Returns ``"disk"`` (demoted), ``"evicted"`` (no disk
        room) or the tier the racer left the chunk on.
        """
        pending = self._moving.get(key)
        if pending is not None:
            yield pending
            return self.tier_of(key) or "evicted"
        item = self._ram.get(key)
        if item is None:
            return self.tier_of(key) or "evicted"
        chunk, nbytes = item
        stored = self.stored_size(key, nbytes)
        if not self._fit_disk(stored, evictable):
            self.drop(key)
            return "evicted"
        done = self.env.event()
        self._moving[key] = done
        try:
            t0 = self.env.now
            yield from self._write_disk(key, chunk, nbytes, stored)
            item = self._ram.pop(key, None)
            if item is not None:
                self._ram_bytes -= nbytes
                if self.node.alive:
                    self.node.memory.put(nbytes)
            self._stats.demotions += 1
            self._stats.bytes_demoted += nbytes
            rec = self.recorder
            if rec is not None:
                rec.record("tier_demote", "disk",
                           self.env.now - t0, nbytes=nbytes)
            return "disk"
        finally:
            del self._moving[key]
            done.succeed()

    # ---------------------------------------------------------------- removal
    def _drop_disk(self, key: str) -> None:
        entry = self._disk.pop(key, None)
        if entry is not None:
            self._disk_bytes -= entry[1]
            self._disk_stored -= entry[2]

    def drop(self, key: str) -> None:
        if key in self._ram:
            super().drop(key)
        else:
            self._drop_disk(key)

    def clear(self) -> None:
        super().clear()
        self._disk.clear()
        self._disk_bytes = 0
        self._disk_stored = 0

    def crash(self) -> int:
        """Node died: RAM is lost (no memory returned), the disk tier
        *survives* — recovery warm-admits the survivors by reference
        instead of re-fetching them from the backend."""
        return super().crash()
