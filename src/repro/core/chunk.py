"""Self-contained data chunk layout (paper §4.1, Fig 5a).

Small files are compacted into chunks of ≥4 MB.  Each chunk is
*self-contained*: its header carries everything needed to reconstruct all
key-value metadata pairs, which is what makes metadata recovery possible
by scanning chunks in ID order (§4.1.2).

Binary layout::

    magic            4  bytes  b"DSL1"
    chunk id        16  bytes  (Table 1 layout)
    file count       4  bytes  uint32 BE
    deletion bitmap  ceil(n/8) bytes (at-write state, normally all clear)
    file table       n entries:
        name length  2  bytes  uint16 BE
        name         var       UTF-8 full path
        offset       8  bytes  uint64 BE (into the data section)
        length       8  bytes  uint64 BE
        crc32        4  bytes  payload checksum
    header crc       4  bytes  crc32 of all bytes above
    data section     concatenated file payloads

The header checksum detects torn/corrupt chunks during recovery scans;
per-file checksums let clients verify payload integrity end to end.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ChunkChecksumError, ChunkFormatError
from repro.util.bitmap import Bitmap
from repro.util.ids import CHUNK_ID_BYTES, ChunkId
from repro.util.pathutil import normalize

MAGIC = b"DSL1"
#: Default minimum chunk payload size (§4: "large data chunks (>= 4MB)").
DEFAULT_CHUNK_SIZE = 4 * 1024 * 1024

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_ENTRY_TAIL = struct.Struct(">QQI")  # offset, length, crc32


@dataclass(frozen=True)
class ChunkFile:
    """One file's entry in a chunk's file table."""

    path: str
    offset: int
    length: int
    crc32: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ChunkFormatError(
                f"negative offset/length for {self.path!r}: "
                f"{self.offset}/{self.length}"
            )


class Chunk:
    """A decoded chunk: file table + data section, with integrity checks."""

    def __init__(
        self,
        chunk_id: ChunkId,
        files: Sequence[ChunkFile],
        data: "bytes | bytearray | memoryview",
        deletion_bitmap: Bitmap | None = None,
    ) -> None:
        self.chunk_id = chunk_id
        self.files = tuple(files)
        # Held as a memoryview so decode can alias the wire blob's data
        # section instead of copying 4 MB per chunk on the read hot path.
        self.data = data if isinstance(data, memoryview) else memoryview(data)
        self.deletion_bitmap = (
            deletion_bitmap if deletion_bitmap is not None else Bitmap(len(files))
        )
        if len(self.deletion_bitmap) != len(self.files):
            raise ChunkFormatError(
                f"bitmap size {len(self.deletion_bitmap)} != file count "
                f"{len(self.files)}"
            )
        self._by_path = {f.path: i for i, f in enumerate(self.files)}
        if len(self._by_path) != len(self.files):
            raise ChunkFormatError("duplicate paths within one chunk")
        for f in self.files:
            if f.offset + f.length > len(self.data):
                raise ChunkFormatError(
                    f"file {f.path!r} extends past data section "
                    f"({f.offset}+{f.length} > {len(self.data)})"
                )

    # -- construction --------------------------------------------------------
    @classmethod
    def build(
        cls, chunk_id: ChunkId, items: Iterable[tuple[str, bytes]]
    ) -> "Chunk":
        """Pack (path, payload) pairs into a chunk."""
        files: list[ChunkFile] = []
        parts: list[bytes] = []
        offset = 0
        for path, payload in items:
            path = normalize(path)
            payload = bytes(payload)
            files.append(
                ChunkFile(path, offset, len(payload), zlib.crc32(payload))
            )
            parts.append(payload)
            offset += len(payload)
        if not files:
            raise ChunkFormatError("a chunk must contain at least one file")
        return cls(chunk_id, files, b"".join(parts))

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.files)

    def __contains__(self, path: str) -> bool:
        return path in self._by_path

    @property
    def paths(self) -> tuple[str, ...]:
        return tuple(f.path for f in self.files)

    def index_of(self, path: str) -> int:
        try:
            return self._by_path[path]
        except KeyError:
            raise ChunkFormatError(f"path not in chunk: {path!r}") from None

    def entry(self, path: str) -> ChunkFile:
        return self.files[self.index_of(path)]

    def payload(self, path: str, verify: bool = True) -> bytes:
        """Extract one file's bytes, optionally verifying its checksum.

        Slices the data-section view, so only the file's own bytes are
        copied out — never the surrounding chunk.
        """
        f = self.entry(path)
        raw = bytes(self.data[f.offset : f.offset + f.length])
        if verify and zlib.crc32(raw) != f.crc32:
            raise ChunkChecksumError(
                f"payload checksum mismatch for {f.path!r} in chunk "
                f"{self.chunk_id.encode()}"
            )
        return raw

    def is_deleted(self, path: str) -> bool:
        return self.deletion_bitmap.get(self.index_of(path))

    def live_files(self) -> list[ChunkFile]:
        return [
            f
            for i, f in enumerate(self.files)
            if not self.deletion_bitmap.get(i)
        ]

    @property
    def deleted_count(self) -> int:
        return self.deletion_bitmap.count()

    @property
    def data_size(self) -> int:
        return len(self.data)

    def live_bytes(self) -> int:
        return sum(f.length for f in self.live_files())

    # -- codec ----------------------------------------------------------------
    def header_bytes(self) -> bytes:
        """Encode the header (everything before the data section)."""
        out = bytearray()
        out += MAGIC
        out += self.chunk_id.raw
        out += _U32.pack(len(self.files))
        out += self.deletion_bitmap.to_bytes()
        for f in self.files:
            name = f.path.encode("utf-8")
            if len(name) > 0xFFFF:
                raise ChunkFormatError(f"path too long: {f.path!r}")
            out += _U16.pack(len(name))
            out += name
            out += _ENTRY_TAIL.pack(f.offset, f.length, f.crc32)
        out += _U32.pack(zlib.crc32(bytes(out)))
        return bytes(out)

    def data_bytes(self) -> bytes:
        """Materialize the data section as ``bytes`` (copies)."""
        return bytes(self.data)

    def encode(self) -> bytes:
        """Serialize the whole chunk (header + data section)."""
        return b"".join((self.header_bytes(), self.data))

    @classmethod
    def decode_header(cls, blob: bytes) -> tuple["Chunk", int]:
        """Parse a header from ``blob``; returns (chunk-with-empty-data,
        data_offset).  The returned chunk has ``data=b''`` — use
        :meth:`decode` for the full object.  Recovery uses this to rebuild
        metadata without touching payload bytes.
        """
        view = memoryview(blob)
        pos = 0

        def take(n: int) -> memoryview:
            nonlocal pos
            if pos + n > len(view):
                raise ChunkFormatError(
                    f"truncated chunk: need {pos + n} bytes, have {len(view)}"
                )
            piece = view[pos : pos + n]
            pos += n
            return piece

        if bytes(take(4)) != MAGIC:
            raise ChunkFormatError("bad chunk magic")
        chunk_id = ChunkId(bytes(take(CHUNK_ID_BYTES)))
        (nfiles,) = _U32.unpack(take(4))
        bitmap = Bitmap.from_bytes(bytes(take((nfiles + 7) // 8)), nfiles)
        files: list[ChunkFile] = []
        for _ in range(nfiles):
            (name_len,) = _U16.unpack(take(2))
            name = bytes(take(name_len)).decode("utf-8")
            offset, length, crc = _ENTRY_TAIL.unpack(take(_ENTRY_TAIL.size))
            files.append(ChunkFile(name, offset, length, crc))
        header_end = pos
        (stored_crc,) = _U32.unpack(take(4))
        if zlib.crc32(bytes(view[:header_end])) != stored_crc:
            raise ChunkChecksumError(
                f"header checksum mismatch in chunk {chunk_id.encode()}"
            )
        data_offset = pos
        shell = cls.__new__(cls)
        shell.chunk_id = chunk_id
        shell.files = tuple(files)
        shell.data = memoryview(b"")
        shell.deletion_bitmap = bitmap
        shell._by_path = {f.path: i for i, f in enumerate(files)}
        return shell, data_offset

    @classmethod
    def decode(cls, blob: bytes) -> "Chunk":
        """Parse a full chunk, validating structure and header checksum.

        The returned chunk's data section is a zero-copy view over
        ``blob`` (which therefore stays alive as long as the chunk does).
        """
        shell, data_offset = cls.decode_header(blob)
        return cls(
            shell.chunk_id,
            shell.files,
            memoryview(blob)[data_offset:],
            shell.deletion_bitmap,
        )

    def __repr__(self) -> str:
        return (
            f"Chunk({self.chunk_id.encode()}, files={len(self.files)}, "
            f"bytes={len(self.data)})"
        )
