"""Client-side aggregation of small files into chunks (write flow, Fig 3).

``DL_put`` appends files to the builder; whenever the buffered payload
reaches the chunk size the builder seals a chunk and hands it to a sink
(normally the DIESEL server's ingest RPC).  ``DL_flush`` seals whatever
remains.  Aggregation is what turns millions of per-file operations into
a few thousand large object writes — the source of the Fig 9 write win.

:class:`ChunkPipeline` is the *asynchronous* sink: instead of blocking
``DL_put`` for each sealed chunk's full ingest round trip, it keeps up
to ``DieselConfig.ingest_pipeline_depth`` sends in flight across the
round-robin servers while later files are still being packed — the
overlap §4.1.1's stateless-server design exists to permit.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Iterator, Optional

from repro.core.chunk import DEFAULT_CHUNK_SIZE, Chunk
from repro.errors import DieselError
from repro.sim.engine import Environment, Event, Process, Semaphore
from repro.util.ids import ChunkIdGenerator
from repro.util.pathutil import normalize


class ChunkBuilder:
    """Accumulates (path, payload) pairs and seals chunks of ≥ chunk_size."""

    def __init__(
        self,
        id_generator: ChunkIdGenerator,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        on_seal: Optional[Callable[[Chunk], None]] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._ids = id_generator
        self.chunk_size = chunk_size
        self._on_seal = on_seal
        self._pending: list[tuple[str, bytes]] = []
        self._pending_paths: set[str] = set()
        self._pending_bytes = 0
        self.sealed_count = 0

    @property
    def pending_files(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def add(self, path: str, payload: bytes) -> Optional[Chunk]:
        """Buffer one file; returns a sealed chunk when the size threshold
        is crossed, else None."""
        path = normalize(path)
        if path in self._pending_paths:
            raise DieselError(
                f"path {path!r} already pending in the current chunk"
            )
        payload = bytes(payload)
        self._pending.append((path, payload))
        self._pending_paths.add(path)
        self._pending_bytes += len(payload)
        if self._pending_bytes >= self.chunk_size:
            return self._seal()
        return None

    def flush(self) -> Optional[Chunk]:
        """Seal any buffered files into a final (possibly small) chunk."""
        if not self._pending:
            return None
        return self._seal()

    def _seal(self) -> Chunk:
        chunk = Chunk.build(self._ids.next(), self._pending)
        self._pending = []
        self._pending_paths = set()
        self._pending_bytes = 0
        self.sealed_count += 1
        if self._on_seal is not None:
            self._on_seal(chunk)
        return chunk

    def build_all(
        self, items, chunk_size: Optional[int] = None
    ) -> list[Chunk]:
        """Convenience: pack an iterable of (path, bytes) into chunks."""
        if chunk_size is not None:
            self.chunk_size = chunk_size
        return list(self.build_stream(items))

    def build_stream(
        self, items: Iterable[tuple[str, bytes]]
    ) -> Iterator[Chunk]:
        """Lazily seal chunks for an iterable of (path, bytes) pairs.

        The async-sink twin of :meth:`build_all`: chunks come out as
        they seal (final flush included), so a :class:`ChunkPipeline`
        can ship each one while later files are still being packed.
        """
        for path, payload in items:
            sealed = self.add(path, payload)
            if sealed is not None:
                yield sealed
        final = self.flush()
        if final is not None:
            yield final


class ChunkPipeline:
    """Bounded asynchronous sink for sealed chunks (§4.1.1 write overlap).

    Wraps a ``ship(chunk)`` generator (normally the client's ingest RPC)
    behind a :class:`~repro.sim.engine.Semaphore` of ``depth`` slots:
    :meth:`submit` waits only while ``depth`` sends are already in
    flight (backpressure bounds buffered memory at
    ``depth × chunk_size``), then ships the chunk in a background
    process.  :meth:`drain` waits for everything in flight and
    propagates the first send failure.
    """

    def __init__(
        self,
        env: Environment,
        ship: Callable[[Chunk], Generator[Event, Any, None]],
        depth: int,
        watermark: Optional[Callable[[int], None]] = None,
    ) -> None:
        if depth < 1:
            raise DieselError("ingest pipeline depth must be >= 1")
        self.env = env
        self.depth = depth
        self._ship = ship
        self._sem = Semaphore(env, depth)
        self._watermark = watermark
        self._procs: list[Process] = []
        self.submitted = 0
        self.shipped = 0

    @property
    def in_flight(self) -> int:
        """Sends currently holding a pipeline slot."""
        return self._sem.in_flight

    def submit(self, chunk: Chunk) -> Generator[Event, Any, None]:
        """Wait for a free slot, then ship ``chunk`` in the background."""
        slot = self._sem.acquire()
        try:
            yield slot
        except BaseException:
            self._sem.abandon(slot)
            raise
        self.submitted += 1
        if self._watermark is not None:
            self._watermark(self._sem.in_flight)
        self._procs.append(
            self.env.process(
                self._send(chunk, slot),
                name=f"ingest:{chunk.chunk_id.encode()[:8]}",
            )
        )

    def _send(self, chunk: Chunk, slot: Event) -> Generator[Event, Any, None]:
        try:
            yield from self._ship(chunk)
            self.shipped += 1
        finally:
            self._sem.release(slot)

    def drain(self) -> Generator[Event, Any, None]:
        """Wait for all in-flight sends; propagates the first failure."""
        procs, self._procs = self._procs, []
        if procs:
            yield self.env.all_of(procs)

    def cancel(self) -> int:
        """Interrupt in-flight sends (DL_close without a flush).

        Returns the number of sends cut short; their semaphore slots are
        released by the send processes' cleanup.
        """
        cut = 0
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("ingest pipeline cancelled")
                cut += 1
        self._procs.clear()
        return cut
