"""Client-side aggregation of small files into chunks (write flow, Fig 3).

``DL_put`` appends files to the builder; whenever the buffered payload
reaches the chunk size the builder seals a chunk and hands it to a sink
(normally the DIESEL server's ingest RPC).  ``DL_flush`` seals whatever
remains.  Aggregation is what turns millions of per-file operations into
a few thousand large object writes — the source of the Fig 9 write win.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.chunk import DEFAULT_CHUNK_SIZE, Chunk
from repro.errors import DieselError
from repro.util.ids import ChunkIdGenerator
from repro.util.pathutil import normalize


class ChunkBuilder:
    """Accumulates (path, payload) pairs and seals chunks of ≥ chunk_size."""

    def __init__(
        self,
        id_generator: ChunkIdGenerator,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        on_seal: Optional[Callable[[Chunk], None]] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._ids = id_generator
        self.chunk_size = chunk_size
        self._on_seal = on_seal
        self._pending: list[tuple[str, bytes]] = []
        self._pending_paths: set[str] = set()
        self._pending_bytes = 0
        self.sealed_count = 0

    @property
    def pending_files(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def add(self, path: str, payload: bytes) -> Optional[Chunk]:
        """Buffer one file; returns a sealed chunk when the size threshold
        is crossed, else None."""
        path = normalize(path)
        if path in self._pending_paths:
            raise DieselError(
                f"path {path!r} already pending in the current chunk"
            )
        payload = bytes(payload)
        self._pending.append((path, payload))
        self._pending_paths.add(path)
        self._pending_bytes += len(payload)
        if self._pending_bytes >= self.chunk_size:
            return self._seal()
        return None

    def flush(self) -> Optional[Chunk]:
        """Seal any buffered files into a final (possibly small) chunk."""
        if not self._pending:
            return None
        return self._seal()

    def _seal(self) -> Chunk:
        chunk = Chunk.build(self._ids.next(), self._pending)
        self._pending = []
        self._pending_paths = set()
        self._pending_bytes = 0
        self.sealed_count += 1
        if self._on_seal is not None:
            self._on_seal(chunk)
        return chunk

    def build_all(
        self, items, chunk_size: Optional[int] = None
    ) -> list[Chunk]:
        """Convenience: pack an iterable of (path, bytes) into chunks."""
        if chunk_size is not None:
            self.chunk_size = chunk_size
        chunks: list[Chunk] = []
        for path, payload in items:
            sealed = self.add(path, payload)
            if sealed is not None:
                chunks.append(sealed)
        final = self.flush()
        if final is not None:
            chunks.append(final)
        return chunks
