"""Pipelined chunk prefetch for chunk-wise shuffle mode (paper §4.3).

The whole point of chunk-wise shuffle is that an epoch's reads become
*sequential chunk reads whose latency hides behind compute* (Figs 12/14).
The :class:`~repro.core.shuffle.EpochPlan` makes the future explicit: the
concatenated per-group chunk lists are exactly the order in which the
consumer will need chunks.  :class:`ChunkPrefetcher` walks that schedule
ahead of the consumer, keeping up to ``depth`` chunks fetched-but-not-yet
-consumed at all times, so by the time the training loop asks for a file
its chunk is (usually) already resident in the group cache — or at least
already in flight, so the consumer waits only for the *remaining* part of
the transfer.

Coordination with demand fetches goes through the client's single-flight
``_inflight`` map (shared by :meth:`DieselClient._ensure_chunk`): a chunk
is never transferred twice, whoever — prefetcher or consumer — asks
first.  The group cache is allowed to grow by ``depth`` entries beyond
``shuffle_group_size`` while the pipeline is active, which bounds the
client's working set at ``(shuffle_group_size + depth) × chunk_size``.

Accounting (extends :class:`~repro.core.client.ClientStats`):

* ``prefetch_issued`` — fetches the pipeline started;
* ``prefetch_hits``   — consumer found its chunk resident or in flight
  thanks to the pipeline;
* ``prefetch_misses`` — consumer had to demand-fetch (pipeline too far
  behind, or the chunk was never scheduled in time);
* ``prefetch_wasted`` — prefetched chunks evicted or cancelled before
  any consumer touched them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Set

from repro.core.shuffle import EpochPlan
from repro.errors import DieselError, InterruptError
from repro.sim.engine import Event, Process, Semaphore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.client import DieselClient


class ChunkPrefetcher:
    """Keeps the next ``depth`` chunks of an epoch plan in flight.

    One instance serves one epoch plan; :meth:`DieselClient.epoch_file_list`
    replaces the previous instance (cancelling whatever it still had in
    flight) whenever a new plan is generated.
    """

    def __init__(
        self, client: "DieselClient", plan: EpochPlan, depth: int
    ) -> None:
        if depth < 1:
            raise DieselError("prefetch depth must be >= 1")
        self.client = client
        self.env = client.env
        self.depth = depth
        # The future chunk order, deduplicated keeping first occurrence:
        # group after group, exactly the order the consumer drains them.
        order: List[str] = []
        seen: Set[str] = set()
        for group in plan.groups:
            for cid in group.chunk_ids:
                encoded = cid.encode()
                if encoded not in seen:
                    seen.add(encoded)
                    order.append(encoded)
        self._schedule = order
        self._scheduled = seen
        self._next = 0  # next schedule index to issue
        #: Issue timestamps for the issue→consume lead-time histogram
        #: (only populated while a recorder is attached to the client).
        self._issue_ts: Dict[str, float] = {}
        #: Issued but not yet consumed (bounds the pipeline window).
        self._outstanding: Set[str] = set()
        self._consumed: Set[str] = set()
        self._procs: Dict[str, Process] = {}
        #: Caps concurrent *transfers* at ``depth``.  The window can
        #: issue a replacement fetch while a consumed chunk's transfer
        #: is still finishing, so without this the pipeline could
        #: briefly exceed depth-K concurrency.
        self._sem = Semaphore(client.env, depth)
        self._active = True
        #: Elastic-membership steering (see :meth:`repin`).
        self.repins = 0
        self.repin_skipped = 0
        self._top_up()

    # ------------------------------------------------------------- status
    @property
    def active(self) -> bool:
        return self._active

    @property
    def in_flight(self) -> int:
        """Prefetch fetch processes currently running."""
        return len(self._procs)

    @property
    def outstanding(self) -> int:
        """Chunks issued ahead of the consumer (≤ depth)."""
        return len(self._outstanding)

    @property
    def schedule_length(self) -> int:
        return len(self._schedule)

    # ----------------------------------------------------------- pipeline
    def _top_up(self) -> None:
        """Issue fetches until ``depth`` chunks are ahead of the consumer."""
        while (
            self._active
            and len(self._outstanding) < self.depth
            and self._next < len(self._schedule)
        ):
            encoded = self._schedule[self._next]
            self._next += 1
            if encoded in self._consumed:
                continue  # demand path beat us to it
            self._outstanding.add(encoded)
            self.client.stats.prefetch_issued += 1
            if self.client.recorder is not None:
                self._issue_ts[encoded] = self.env.now
            self._procs[encoded] = self.env.process(
                self._fetch(encoded), name=f"prefetch:{encoded[:8]}"
            )

    def _fetch(self, encoded: str) -> Generator[Event, Any, None]:
        slot = self._sem.acquire()
        try:
            if not slot.triggered:
                yield slot
        except InterruptError:
            # Interrupted while queued (or racing the grant): give the
            # request up without ever holding a slot.
            self._sem.abandon(slot)
            self._procs.pop(encoded, None)
            return
        self.client._note_fetch_inflight(self._sem.in_flight)
        try:
            yield from self.client._ensure_chunk(encoded)
        except InterruptError:
            return  # cancelled: single-flight cleanup already ran
        finally:
            self._sem.release(slot)
            self._procs.pop(encoded, None)

    def repin(self, owner_of) -> int:
        """Drop not-yet-issued schedule entries that became node-local.

        After an elastic scale event moves chunk ownership, chunks the
        schedule planned to pull over the network may now live on this
        client's own node — their demand read is already an intra-node
        memory copy, so spending a pipeline slot (and a transfer window)
        prefetching them is pure waste.  Issued and in-flight fetches
        are left alone; skipped chunks are unscheduled, so a later
        demand read neither scores a miss nor holds a window slot.
        ``owner_of`` maps an encoded chunk id to its owner node name.
        Returns how many entries were skipped.
        """
        if not self._active or self._next >= len(self._schedule):
            return 0
        local = self.client.node.name
        keep: List[str] = []
        skipped = 0
        for encoded in self._schedule[self._next:]:
            if encoded not in self._consumed and owner_of(encoded) == local:
                self._scheduled.discard(encoded)
                skipped += 1
            else:
                keep.append(encoded)
        if skipped:
            del self._schedule[self._next:]
            self._schedule.extend(keep)
            self.repin_skipped += skipped
        self.repins += 1
        return skipped

    def protects(self, encoded: str) -> bool:
        """True while ``encoded`` is prefetched-ahead but not yet consumed.

        The client's eviction loop skips protected chunks: a prefetched
        chunk sits at its insertion position in the LRU order while the
        consumer keeps refreshing the current group's chunks, so plain
        LRU would evict exactly the chunks the pipeline just paid to
        transfer — turning each prefetch into a wasted+duplicate read.
        """
        return self._active and encoded in self._outstanding

    # ------------------------------------------------------ client hooks
    def on_access(self, encoded: str, resident: bool, in_flight: bool) -> None:
        """Consumer is about to read a file of chunk ``encoded``.

        Called by the client's group-cache read path *before* it resolves
        the chunk, so ``resident``/``in_flight`` reflect what the
        pipeline achieved.  First access to each chunk scores the
        pipeline (hit vs miss) and frees one window slot.
        """
        if not self._active or encoded in self._consumed:
            return
        if encoded not in self._scheduled:
            return  # out-of-plan read (e.g. a stray get()); not ours
        self._consumed.add(encoded)
        if encoded in self._outstanding:
            self._outstanding.discard(encoded)
            rec = self.client.recorder
            if rec is not None:
                ts = self._issue_ts.pop(encoded, None)
                if ts is not None:
                    # Issue→consume lead: how far ahead of the consumer
                    # the pipeline ran for this chunk.
                    rec.record("prefetch", "lead", self.env.now - ts,
                               actor=self.client.name, chunk=encoded[:12],
                               hit=bool(resident or in_flight))
            if resident or in_flight:
                self.client.stats.prefetch_hits += 1
            else:
                # Issued but the fetch failed/was lost: the consumer
                # pays the full transfer after all.
                self.client.stats.prefetch_misses += 1
        elif not resident:
            # Scheduled but not yet issued: the consumer outran the
            # pipeline (depth too small for the compute/transfer ratio).
            self.client.stats.prefetch_misses += 1
        self._top_up()

    def on_evict(self, encoded: str) -> None:
        """A chunk fell out of the group cache before being consumed."""
        if encoded in self._outstanding:
            self._outstanding.discard(encoded)
            self.client.stats.prefetch_wasted += 1
            if self.client.recorder is not None:
                self._issue_ts.pop(encoded, None)
                self.client.recorder.count("prefetch", "wasted")
            self._top_up()

    # ------------------------------------------------------------- cancel
    def cancel(self) -> None:
        """Stop the pipeline and interrupt in-flight fetches.

        Idempotent.  In-flight fetch processes are interrupted; their
        single-flight entries are cleaned up by ``_ensure_chunk``'s
        ``finally`` so waiting demand readers simply re-fetch.  Chunks
        issued but never consumed count as wasted.
        """
        if not self._active:
            return
        self._active = False
        for proc in list(self._procs.values()):
            if proc.is_alive:
                proc.interrupt("prefetch cancelled")
        self._procs.clear()
        self.client.stats.prefetch_wasted += len(self._outstanding)
        if self.client.recorder is not None and self._outstanding:
            self.client.recorder.count(
                "prefetch", "wasted", len(self._outstanding)
            )
        self._outstanding.clear()
        self._issue_ts.clear()
