"""Key-value metadata schema (paper §4.1.1, Fig 5b).

Filesystem operations are translated to key-value operations in the
DIESEL server (metadata *processing* is decoupled from metadata
*storage*).  The keyspace, per dataset ``ds``:

========================================  =======================================
key                                       value
========================================  =======================================
``ds:<ds>``                               :class:`DatasetRecord` (update ts,
                                          sorted chunk-ID list)
``ck:<ds>:<chunk-id>``                    :class:`ChunkRecord` (update ts, size,
                                          #files, #deleted, deletion bitmap)
``f:<ds>:<path>``                         :class:`FileRecord` (chunk id, offset,
                                          length, crc)
``dir:<ds>:<hash(parent)>/d:<name>``      ``b""``  (subdirectory entry)
``dir:<ds>:<hash(parent)>/f:<name>``      ``b""``  (file entry)
========================================  =======================================

``readdir(/folderA)`` is exactly the paper's
``pscan hash(/folderA)/d ∪ pscan hash(/folderA)/f``.
All records serialize to compact binary so the KV store holds real bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import DieselError
from repro.util.bitmap import Bitmap
from repro.util.ids import CHUNK_ID_BYTES, ChunkId
from repro.util.hashing import stable_hash
from repro.util.pathutil import dirname, normalize

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_FILE_REC = struct.Struct(f">{CHUNK_ID_BYTES}sQQI")  # cid, offset, length, crc
_CHUNK_REC_HEAD = struct.Struct(f">{CHUNK_ID_BYTES}sQQII")  # cid, ts, size, nfiles, ndeleted


# -- key builders -------------------------------------------------------------
def dataset_key(dataset: str) -> str:
    return f"ds:{dataset}"


def chunk_key(dataset: str, chunk_id: ChunkId) -> str:
    return f"ck:{dataset}:{chunk_id.encode()}"


def chunk_key_prefix(dataset: str) -> str:
    return f"ck:{dataset}:"


def file_key(dataset: str, path: str) -> str:
    return f"f:{dataset}:{normalize(path)}"


def file_key_prefix(dataset: str) -> str:
    return f"f:{dataset}:"


def dir_hash(path: str) -> str:
    """Printable stable hash of a directory path (the paper's hash(...))."""
    return f"{stable_hash(normalize(path)):016x}"


def dir_entry_key(dataset: str, parent: str, name: str, is_dir: bool) -> str:
    kind = "d" if is_dir else "f"
    return f"dir:{dataset}:{dir_hash(parent)}/{kind}:{name}"


def dir_scan_prefix(dataset: str, parent: str, kind: str) -> str:
    """Prefix for pscan of one directory's entries; kind is 'd' or 'f'."""
    if kind not in ("d", "f"):
        raise ValueError("kind must be 'd' or 'f'")
    return f"dir:{dataset}:{dir_hash(parent)}/{kind}:"


# -- records -------------------------------------------------------------------
@dataclass(frozen=True)
class FileRecord:
    """Where one file lives: chunk, offset within its data section, length."""

    path: str
    chunk_id: ChunkId
    offset: int
    length: int
    crc32: int

    def encode(self) -> bytes:
        tail = _FILE_REC.pack(
            self.chunk_id.raw, self.offset, self.length, self.crc32
        )
        name = self.path.encode("utf-8")
        return _U32.pack(len(name)) + name + tail

    @classmethod
    def decode(cls, blob: bytes) -> "FileRecord":
        (name_len,) = _U32.unpack_from(blob, 0)
        name = blob[4 : 4 + name_len].decode("utf-8")
        cid_raw, offset, length, crc = _FILE_REC.unpack_from(blob, 4 + name_len)
        return cls(name, ChunkId(cid_raw), offset, length, crc)


@dataclass(frozen=True)
class ChunkRecord:
    """Per-chunk metadata: update time, size, file counts, deletion bitmap."""

    chunk_id: ChunkId
    update_ts: int
    size: int
    nfiles: int
    ndeleted: int
    bitmap: Bitmap

    def __post_init__(self) -> None:
        if len(self.bitmap) != self.nfiles:
            raise DieselError(
                f"chunk record bitmap size {len(self.bitmap)} != nfiles "
                f"{self.nfiles}"
            )
        if self.ndeleted != self.bitmap.count():
            raise DieselError("ndeleted disagrees with bitmap population")

    def encode(self) -> bytes:
        head = _CHUNK_REC_HEAD.pack(
            self.chunk_id.raw, self.update_ts, self.size, self.nfiles, self.ndeleted
        )
        return head + self.bitmap.to_bytes()

    @classmethod
    def decode(cls, blob: bytes) -> "ChunkRecord":
        cid_raw, ts, size, nfiles, ndeleted = _CHUNK_REC_HEAD.unpack_from(blob, 0)
        bitmap = Bitmap.from_bytes(blob[_CHUNK_REC_HEAD.size :], nfiles)
        return cls(ChunkId(cid_raw), ts, size, nfiles, ndeleted, bitmap)

    def with_deleted(self, index: int) -> "ChunkRecord":
        """A copy with file ``index`` tombstoned."""
        bm = self.bitmap.copy()
        if bm.get(index):
            raise DieselError(f"file index {index} already deleted")
        bm.set(index)
        return ChunkRecord(
            self.chunk_id, self.update_ts, self.size, self.nfiles,
            self.ndeleted + 1, bm,
        )


@dataclass(frozen=True)
class DatasetRecord:
    """Dataset root record: freshness timestamp + ordered chunk-ID list."""

    name: str
    update_ts: int
    chunk_ids: tuple[ChunkId, ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        name = self.name.encode("utf-8")
        out = bytearray()
        out += _U32.pack(len(name))
        out += name
        out += _U64.pack(self.update_ts)
        out += _U32.pack(len(self.chunk_ids))
        for cid in self.chunk_ids:
            out += cid.raw
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "DatasetRecord":
        (name_len,) = _U32.unpack_from(blob, 0)
        pos = 4
        name = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        (ts,) = _U64.unpack_from(blob, pos)
        pos += 8
        (n,) = _U32.unpack_from(blob, pos)
        pos += 4
        cids = []
        for _ in range(n):
            cids.append(ChunkId(blob[pos : pos + CHUNK_ID_BYTES]))
            pos += CHUNK_ID_BYTES
        return cls(name, ts, tuple(cids))

    def with_chunks(self, new_ids: Sequence[ChunkId], ts: int) -> "DatasetRecord":
        merged = tuple(sorted(set(self.chunk_ids) | set(new_ids)))
        return DatasetRecord(self.name, ts, merged)

    def without_chunks(self, gone: Sequence[ChunkId], ts: int) -> "DatasetRecord":
        removed = set(gone)
        kept = tuple(c for c in self.chunk_ids if c not in removed)
        return DatasetRecord(self.name, ts, kept)


def directory_entry_pairs(dataset: str, path: str) -> list[tuple[str, bytes]]:
    """All dir-entry KV pairs implied by one file path.

    Links the file into its parent and every ancestor directory into its
    own parent, so the hierarchy is reconstructible by pscan alone.
    """
    path = normalize(path)
    pairs = [(dir_entry_key(dataset, dirname(path), path.rsplit("/", 1)[-1] or path, False), b"")]
    current = dirname(path)
    while current != "/":
        parent = dirname(current)
        name = current.rsplit("/", 1)[-1]
        pairs.append((dir_entry_key(dataset, parent, name, True), b""))
        current = parent
    return pairs


def file_checksum(payload: bytes) -> int:
    """The checksum stored in file records (crc32, matching chunk entries)."""
    return zlib.crc32(payload)
