"""Metadata recovery from self-contained chunks (paper §4.1.2).

Two scenarios for the in-memory KV metadata database:

* **Scenario (a)** — one KV server node failed and its recently-written
  pairs are lost: rescan chunks *from a known timestamp onward* and
  re-ingest their metadata.
* **Scenario (b)** — all in-memory pairs are lost (data-center power
  failure): rescan **all** chunks in the order they were written.

Both work because (1) every chunk header carries enough to rebuild all of
its KV pairs, and (2) the order-preserving chunk-ID encoding makes a
sorted object-store listing equal written order, so "from timestamp T"
is a simple seek within the listing.

Only chunk *headers* are read during recovery — a few KB per multi-MB
chunk — which is why DIESEL recovers orders of magnitude faster than a
per-file cache reload (Fig 11b).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.chunk import Chunk
from repro.core.server import DieselServer, parse_object_key
from repro.errors import ReproError
from repro.sim.engine import Event, fan_out
from repro.util.ids import ChunkId

#: Conservative bound on header bytes fetched per chunk during a scan.
HEADER_READ_BYTES = 64 * 1024


def _scan_keys(server: DieselServer, dataset: str, from_ts: Optional[int]) -> list[str]:
    """Chunk object keys for ``dataset`` in written order, from ``from_ts``."""
    prefix = f"{dataset}/"
    keys = [k for k in server.store.list_keys() if k.startswith(prefix)]
    if from_ts is not None:
        keys = [
            k for k in keys if parse_object_key(k)[1].timestamp >= from_ts
        ]
    return keys


def _read_header(
    server: DieselServer, key: str
) -> Generator[Event, Any, tuple[Any, int, int]]:
    """Fetch one chunk header; returns (shell, data_offset, blob_len)."""
    blob = server.store.peek(key)
    header_bytes = min(HEADER_READ_BYTES, len(blob))
    # Charge a header-sized read, not the whole chunk.
    yield from server.store.get_range(key, 0, header_bytes)
    shell, data_offset = Chunk.decode_header(blob)
    return shell, data_offset, len(blob)


def rebuild_dataset(
    server: DieselServer,
    dataset: str,
    from_timestamp: Optional[int] = None,
    fanout: int = 1,
) -> Generator[Event, Any, int]:
    """Rebuild KV metadata for one dataset by scanning its chunks.

    ``from_timestamp=None`` is scenario (b) — full rebuild;
    a value is scenario (a) — incremental rescan of chunks whose ID
    timestamp is ≥ the given (simulated-clock) second.

    ``fanout > 1`` overlaps the header *reads* (the device-bound part of
    the scan) with up to that many in flight; the metadata replay itself
    always happens serially in written order — the dataset record's
    chunk list must come out exactly as ingest appended it, or shuffle
    plans built from a rebuilt index would diverge.

    Returns the number of chunks scanned.  The rebuilt dataset record's
    version restarts from the scan (monotonicity within the rebuild is
    preserved because chunks are replayed in written order).

    The dataset's mutation journal is reset up front: the failed shard
    may have held journal entries, and a journal with holes cannot serve
    deltas.  The replay then re-journals each re-ingest, so delta
    clients converge through the rebuilt entries or fall back to a full
    snapshot reload.
    """
    server.journal.reset(dataset)
    keys = _scan_keys(server, dataset, from_timestamp)
    if fanout > 1 and len(keys) > 1:
        headers = yield from fan_out(
            server.env,
            [_read_header(server, key) for key in keys],
            fanout,
            name=f"rebuild:{dataset}",
        )
        for shell, data_offset, blob_len in headers:
            n_pairs = server.ingest_metadata(
                dataset, shell, data_size=blob_len - data_offset
            )
            yield server.env.timeout(server._kv_pipeline_cost(n_pairs))
        return len(keys)
    scanned = 0
    for key in keys:
        shell, data_offset, blob_len = yield from _read_header(server, key)
        n_pairs = server.ingest_metadata(
            dataset, shell, data_size=blob_len - data_offset
        )
        yield server.env.timeout(server._kv_pipeline_cost(n_pairs))
        scanned += 1
    return scanned


def rebuild_all(
    server: DieselServer,
    from_timestamp: Optional[int] = None,
    fanout: int = 1,
) -> Generator[Event, Any, dict[str, int]]:
    """Rebuild every dataset found in the object store.

    Returns ``{dataset: chunks_scanned}``.  Dataset names come from the
    object-key prefix (chunks themselves are dataset-agnostic).
    ``fanout`` is passed through to each dataset's rebuild.
    """
    datasets: dict[str, int] = {}
    for key in server.store.list_keys():
        ds, _ = parse_object_key(key)
        datasets.setdefault(ds, 0)
    for ds in sorted(datasets):
        n = yield from rebuild_dataset(server, ds, from_timestamp, fanout)
        datasets[ds] = n
    return datasets


def verify_rebuild(
    server: DieselServer, dataset: str, expected_files: dict[str, int]
) -> list[str]:
    """Cross-check rebuilt metadata against expectations.

    ``expected_files`` maps path → length.  Returns a list of
    human-readable discrepancies (empty = clean).
    """
    problems: list[str] = []
    for path, length in expected_files.items():
        try:
            rec = server._file_record(dataset, path)
        except (ReproError, KeyError):
            # Narrow on purpose: only "the record is not there" counts
            # as a discrepancy; a programming error must propagate.
            problems.append(f"missing file record: {path}")
            continue
        if rec.length != length:
            problems.append(
                f"length mismatch for {path}: kv={rec.length} expected={length}"
            )
    try:
        dsrec = server.dataset_info(dataset)
    except (ReproError, KeyError):
        problems.append(f"missing dataset record: {dataset}")
        return problems
    listed = {parse_object_key(k)[1] for k in _scan_keys(server, dataset, None)}
    recorded = set(dsrec.chunk_ids)
    for cid in listed - recorded:
        problems.append(f"chunk {cid.encode()} on storage but not in record")
    for cid in recorded - listed:
        problems.append(f"chunk {cid.encode()} in record but not on storage")
    return problems
