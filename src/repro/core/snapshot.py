"""Per-dataset metadata snapshots (paper §4.1.3).

A snapshot materializes a dataset's metadata to a compact blob clients
keep on local disk: the dataset update timestamp, the chunk-ID list, and
per-file (path, chunk, offset, length).  Loading it builds an in-memory
hash index plus the directory hierarchy (reconstructed from full paths),
after which *every* metadata operation is served locally in O(1) — the
source of the linear scaling in Fig 10b and the flat ``ls -lR`` time in
Fig 10c.

A snapshot is only valid while its ``update_ts`` matches the dataset
record in the KV store; stale loads raise :class:`StaleSnapshotError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.meta import FileRecord
from repro.errors import ChunkFormatError, FileNotFoundInDatasetError
from repro.util.ids import CHUNK_ID_BYTES, ChunkId
from repro.util.pathutil import dirname, normalize

MAGIC = b"DSNP"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_FILE_ENTRY = struct.Struct(">IQQI")  # chunk index, offset, length, crc


@dataclass(frozen=True)
class MetadataSnapshot:
    """The serializable snapshot payload."""

    dataset: str
    update_ts: int
    chunk_ids: tuple[ChunkId, ...]
    files: tuple[FileRecord, ...]

    def serialize(self) -> bytes:
        """Compact binary form (chunk table + per-file entries)."""
        chunk_index = {cid: i for i, cid in enumerate(self.chunk_ids)}
        out = bytearray()
        out += MAGIC
        name = self.dataset.encode("utf-8")
        out += _U32.pack(len(name))
        out += name
        out += _U64.pack(self.update_ts)
        out += _U32.pack(len(self.chunk_ids))
        for cid in self.chunk_ids:
            out += cid.raw
        out += _U32.pack(len(self.files))
        for f in self.files:
            try:
                ci = chunk_index[f.chunk_id]
            except KeyError:
                raise ChunkFormatError(
                    f"file {f.path!r} references chunk "
                    f"{f.chunk_id.encode()} not in the snapshot's chunk list"
                ) from None
            path = f.path.encode("utf-8")
            out += _U32.pack(len(path))
            out += path
            out += _FILE_ENTRY.pack(ci, f.offset, f.length, f.crc32)
        return bytes(out)

    @classmethod
    def deserialize(cls, blob: bytes) -> "MetadataSnapshot":
        if blob[:4] != MAGIC:
            raise ChunkFormatError("bad snapshot magic")
        pos = 4
        (name_len,) = _U32.unpack_from(blob, pos)
        pos += 4
        dataset = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        (ts,) = _U64.unpack_from(blob, pos)
        pos += 8
        (n_chunks,) = _U32.unpack_from(blob, pos)
        pos += 4
        chunk_ids = []
        for _ in range(n_chunks):
            chunk_ids.append(ChunkId(blob[pos : pos + CHUNK_ID_BYTES]))
            pos += CHUNK_ID_BYTES
        (n_files,) = _U32.unpack_from(blob, pos)
        pos += 4
        files = []
        for _ in range(n_files):
            (path_len,) = _U32.unpack_from(blob, pos)
            pos += 4
            path = blob[pos : pos + path_len].decode("utf-8")
            pos += path_len
            ci, offset, length, crc = _FILE_ENTRY.unpack_from(blob, pos)
            pos += _FILE_ENTRY.size
            files.append(FileRecord(path, chunk_ids[ci], offset, length, crc))
        return cls(dataset, ts, tuple(chunk_ids), tuple(files))

    @property
    def file_count(self) -> int:
        return len(self.files)

    def total_bytes(self) -> int:
        return sum(f.length for f in self.files)


class SnapshotIndex:
    """A loaded snapshot: O(1) file lookup + reconstructed hierarchy."""

    def __init__(self, snapshot: MetadataSnapshot) -> None:
        self.snapshot = snapshot
        self._files: dict[str, FileRecord] = {}
        self._dirs: dict[str, set[str]] = {"/": set()}
        for rec in snapshot.files:
            path = normalize(rec.path)
            self._files[path] = rec
            self._link(path)
        self._by_chunk: Optional[dict[ChunkId, list[str]]] = None

    def _link(self, path: str) -> None:
        child = path
        parent = dirname(path)
        while True:
            children = self._dirs.setdefault(parent, set())
            if child in children:
                break  # this ancestor chain is already linked
            children.add(child)
            if parent == "/":
                break
            child, parent = parent, dirname(parent)

    @property
    def dataset(self) -> str:
        return self.snapshot.dataset

    @property
    def update_ts(self) -> int:
        return self.snapshot.update_ts

    @property
    def file_count(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return normalize(path) in self._files

    def lookup(self, path: str) -> FileRecord:
        """O(1) file-record lookup (the Fig 10b fast path)."""
        try:
            return self._files[normalize(path)]
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def stat(self, path: str) -> dict:
        """Table 3's DL_stat payload: size, upload time, etc.

        ``upload_time`` comes for free from the owning chunk's ID, whose
        first four bytes are its creation second (Table 1).
        """
        path = normalize(path)
        rec = self._files.get(path)
        if rec is not None:
            return {
                "path": path,
                "is_dir": False,
                "size": rec.length,
                "chunk_id": rec.chunk_id,
                "upload_time": rec.chunk_id.timestamp,
            }
        if path in self._dirs:
            return {"path": path, "is_dir": True, "size": 0,
                    "chunk_id": None, "upload_time": None}
        raise FileNotFoundInDatasetError(path)

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def readdir(self, path: str) -> list[str]:
        path = normalize(path)
        try:
            return sorted(self._dirs[path])
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def walk(self, root: str = "/") -> Iterator[str]:
        """Yield directories depth-first, starting at ``root``."""
        stack = [normalize(root)]
        while stack:
            d = stack.pop()
            yield d
            for child in sorted(self._dirs.get(d, ()), reverse=True):
                if child in self._dirs:
                    stack.append(child)

    def all_paths(self) -> list[str]:
        return list(self._files)

    def files_by_chunk(self) -> dict[ChunkId, list[str]]:
        """Live files grouped by chunk (input to chunk-wise shuffle)."""
        if self._by_chunk is None:
            grouping: dict[ChunkId, list[str]] = {}
            for path, rec in self._files.items():
                grouping.setdefault(rec.chunk_id, []).append(path)
            # Deterministic within-chunk order: by offset.
            for paths in grouping.values():
                paths.sort(key=lambda p: self._files[p].offset)
            self._by_chunk = grouping
        return self._by_chunk

    def chunk_ids(self) -> tuple[ChunkId, ...]:
        return self.snapshot.chunk_ids


def build_snapshot(
    dataset: str,
    update_ts: int,
    files: Sequence[FileRecord],
    chunk_ids: Optional[Sequence[ChunkId]] = None,
) -> MetadataSnapshot:
    """Assemble a snapshot, deriving the chunk list if not given."""
    if chunk_ids is None:
        chunk_ids = sorted({f.chunk_id for f in files})
    return MetadataSnapshot(dataset, update_ts, tuple(chunk_ids), tuple(files))
