"""Per-dataset metadata snapshots (paper §4.1.3).

A snapshot materializes a dataset's metadata to a compact blob clients
keep on local disk: the dataset update timestamp, the chunk-ID list, and
per-file (path, chunk, offset, length).  Loading it builds an in-memory
hash index plus the directory hierarchy (reconstructed from full paths),
after which *every* metadata operation is served locally in O(1) — the
source of the linear scaling in Fig 10b and the flat ``ls -lR`` time in
Fig 10c.

A snapshot is only valid while its ``update_ts`` matches the dataset
record in the KV store; stale loads raise :class:`StaleSnapshotError`.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.meta import FileRecord
from repro.core import meta_journal as mj
from repro.errors import (
    ChunkFormatError,
    DeltaConflictError,
    FileNotFoundInDatasetError,
)
from repro.util.ids import CHUNK_ID_BYTES, ChunkId
from repro.util.pathutil import dirname, normalize

MAGIC = b"DSNP"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_FILE_ENTRY = struct.Struct(">IQQI")  # chunk index, offset, length, crc
_CID = struct.Struct(f">{CHUNK_ID_BYTES}s")


@dataclass(frozen=True)
class MetadataSnapshot:
    """The serializable snapshot payload."""

    dataset: str
    update_ts: int
    chunk_ids: tuple[ChunkId, ...]
    files: tuple[FileRecord, ...]

    def serialize(self) -> bytes:
        """Compact binary form: chunk table + columnar file entries.

        The layout is columnar — all paths NUL-joined in one section,
        all fixed-width entries packed back to back in another — so both
        directions run as single-pass bulk operations (one ``join`` here,
        one :func:`struct.iter_unpack` sweep in :meth:`deserialize`)
        instead of a Python loop of per-file packs.
        """
        chunk_index = {cid: i for i, cid in enumerate(self.chunk_ids)}
        pack = _FILE_ENTRY.pack
        try:
            entries = b"".join(
                [
                    pack(chunk_index[f.chunk_id], f.offset, f.length, f.crc32)
                    for f in self.files
                ]
            )
        except KeyError:
            bad = next(
                f for f in self.files if f.chunk_id not in chunk_index
            )
            raise ChunkFormatError(
                f"file {bad.path!r} references chunk "
                f"{bad.chunk_id.encode()} not in the snapshot's chunk list"
            ) from None
        paths = "\0".join(f.path for f in self.files)
        if self.files and paths.count("\0") != len(self.files) - 1:
            raise ChunkFormatError("file paths must not contain NUL")
        paths_blob = paths.encode("utf-8")
        name = self.dataset.encode("utf-8")
        return b"".join(
            (
                MAGIC,
                _U32.pack(len(name)),
                name,
                _U64.pack(self.update_ts),
                _U32.pack(len(self.chunk_ids)),
                b"".join(cid.raw for cid in self.chunk_ids),
                _U32.pack(len(self.files)),
                _U32.pack(len(paths_blob)),
                paths_blob,
                entries,
            )
        )

    @classmethod
    def deserialize(cls, blob: bytes) -> "MetadataSnapshot":
        if blob[:4] != MAGIC:
            raise ChunkFormatError("bad snapshot magic")
        pos = 4
        (name_len,) = _U32.unpack_from(blob, pos)
        pos += 4
        dataset = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        (ts,) = _U64.unpack_from(blob, pos)
        pos += 8
        (n_chunks,) = _U32.unpack_from(blob, pos)
        pos += 4
        cid_end = pos + n_chunks * CHUNK_ID_BYTES
        chunk_ids = [
            ChunkId(raw) for (raw,) in _CID.iter_unpack(blob[pos:cid_end])
        ]
        pos = cid_end
        (n_files,) = _U32.unpack_from(blob, pos)
        pos += 4
        (paths_len,) = _U32.unpack_from(blob, pos)
        pos += 4
        if n_files:
            paths = blob[pos : pos + paths_len].decode("utf-8").split("\0")
        else:
            paths = []
        if len(paths) != n_files:
            raise ChunkFormatError(
                f"snapshot path section holds {len(paths)} paths, "
                f"header says {n_files}"
            )
        pos += paths_len
        entries_end = pos + n_files * _FILE_ENTRY.size
        files = [
            FileRecord(path, chunk_ids[ci], offset, length, crc)
            for path, (ci, offset, length, crc) in zip(
                paths, _FILE_ENTRY.iter_unpack(blob[pos:entries_end])
            )
        ]
        return cls(dataset, ts, tuple(chunk_ids), tuple(files))

    @property
    def file_count(self) -> int:
        return len(self.files)

    def total_bytes(self) -> int:
        return sum(f.length for f in self.files)


class SnapshotIndex:
    """A loaded snapshot: O(1) file lookup + reconstructed hierarchy.

    The index is *live*: :meth:`apply_delta` patches it in place from a
    dataset's mutation journal, advancing :attr:`update_ts` past the
    originally loaded blob.  ``snapshot`` therefore records what was
    loaded, while ``update_ts`` / ``chunk_ids()`` / lookups reflect every
    applied delta.
    """

    def __init__(self, snapshot: MetadataSnapshot) -> None:
        self.snapshot = snapshot
        self._update_ts = snapshot.update_ts
        self._chunk_ids: list[ChunkId] = sorted(snapshot.chunk_ids)
        self._files: dict[str, FileRecord] = {}
        self._dirs: dict[str, set[str]] = {"/": set()}
        for rec in snapshot.files:
            path = normalize(rec.path)
            self._files[path] = rec
            self._link(path)
        self._by_chunk: Optional[dict[ChunkId, list[str]]] = None

    def _link(self, path: str) -> None:
        child = path
        parent = dirname(path)
        while True:
            children = self._dirs.setdefault(parent, set())
            if child in children:
                break  # this ancestor chain is already linked
            children.add(child)
            if parent == "/":
                break
            child, parent = parent, dirname(parent)

    @property
    def dataset(self) -> str:
        return self.snapshot.dataset

    @property
    def update_ts(self) -> int:
        """Current version: the loaded blob's ts plus applied deltas."""
        return self._update_ts

    @property
    def file_count(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return normalize(path) in self._files

    def lookup(self, path: str) -> FileRecord:
        """O(1) file-record lookup (the Fig 10b fast path)."""
        try:
            return self._files[normalize(path)]
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def stat(self, path: str) -> dict:
        """Table 3's DL_stat payload: size, upload time, etc.

        ``upload_time`` comes for free from the owning chunk's ID, whose
        first four bytes are its creation second (Table 1).
        """
        path = normalize(path)
        rec = self._files.get(path)
        if rec is not None:
            return {
                "path": path,
                "is_dir": False,
                "size": rec.length,
                "chunk_id": rec.chunk_id,
                "upload_time": rec.chunk_id.timestamp,
            }
        if path in self._dirs:
            return {"path": path, "is_dir": True, "size": 0,
                    "chunk_id": None, "upload_time": None}
        raise FileNotFoundInDatasetError(path)

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def readdir(self, path: str) -> list[str]:
        path = normalize(path)
        try:
            return sorted(self._dirs[path])
        except KeyError:
            raise FileNotFoundInDatasetError(path) from None

    def walk(self, root: str = "/") -> Iterator[str]:
        """Yield directories depth-first, starting at ``root``."""
        stack = [normalize(root)]
        while stack:
            d = stack.pop()
            yield d
            for child in sorted(self._dirs.get(d, ()), reverse=True):
                if child in self._dirs:
                    stack.append(child)

    def all_paths(self) -> list[str]:
        return list(self._files)

    def files_by_chunk(self) -> dict[ChunkId, list[str]]:
        """Live files grouped by chunk (input to chunk-wise shuffle)."""
        if self._by_chunk is None:
            grouping: dict[ChunkId, list[str]] = {}
            for path, rec in self._files.items():
                grouping.setdefault(rec.chunk_id, []).append(path)
            # Deterministic within-chunk order: by offset.
            for paths in grouping.values():
                paths.sort(key=lambda p: self._files[p].offset)
            self._by_chunk = grouping
        return self._by_chunk

    def chunk_ids(self) -> tuple[ChunkId, ...]:
        return tuple(self._chunk_ids)

    # ------------------------------------------------------------- deltas
    def apply_delta(self, entries: Sequence["mj.JournalEntry"]) -> int:
        """Patch the index in place from journal ``entries``; O(delta).

        ``entries`` must be the contiguous run of mutations immediately
        following this index's version — the first entry at
        ``update_ts + 1``, each next one ts-consecutive.  Anything else
        (a gap past the journal horizon, or re-applying an already
        applied delta) raises :class:`DeltaConflictError` instead of
        silently corrupting the index.  Updates ``_files``, ``_dirs``
        and the ``files_by_chunk`` grouping in place — no rebuild.
        Returns the number of ops applied.
        """
        applied = 0
        for entry in entries:
            if entry.ts != self._update_ts + 1:
                raise DeltaConflictError(
                    self.dataset, self._update_ts, entry.ts
                )
            for op in entry.ops:
                self._apply_op(op)
                applied += 1
            self._update_ts = entry.ts
        return applied

    def _apply_op(self, op: "mj.JournalOp") -> None:
        if op.kind == mj.OP_APPEND:
            rec = FileRecord.decode(op.payload)
            path = normalize(rec.path)
            old = self._files.get(path)
            self._files[path] = rec
            if old is None:
                self._link(path)
            if self._by_chunk is not None:
                if old is not None:
                    group = self._by_chunk.get(old.chunk_id)
                    if group is not None and path in group:
                        group.remove(path)
                bisect.insort(
                    self._by_chunk.setdefault(rec.chunk_id, []),
                    path,
                    key=lambda p: self._files[p].offset,
                )
        elif op.kind == mj.OP_DELETE:
            path = normalize(op.path)
            rec = self._files.pop(path, None)
            if rec is None:
                raise DeltaConflictError(
                    self.dataset, self._update_ts, self._update_ts + 1,
                    detail=f"delete of unknown path {path!r}",
                )
            self._unlink(path)
            if self._by_chunk is not None:
                group = self._by_chunk.get(rec.chunk_id)
                if group is not None and path in group:
                    group.remove(path)
        elif op.kind == mj.OP_CHUNK_ADD:
            cid = ChunkId(op.payload)
            i = bisect.bisect_left(self._chunk_ids, cid)
            if i == len(self._chunk_ids) or self._chunk_ids[i] != cid:
                self._chunk_ids.insert(i, cid)
        elif op.kind == mj.OP_CHUNK_DROP:
            cid = ChunkId(op.payload)
            i = bisect.bisect_left(self._chunk_ids, cid)
            if i < len(self._chunk_ids) and self._chunk_ids[i] == cid:
                del self._chunk_ids[i]
            if self._by_chunk is not None:
                self._by_chunk.pop(cid, None)
        else:  # pragma: no cover - JournalOp validates kinds
            raise DeltaConflictError(
                self.dataset, self._update_ts, self._update_ts + 1,
                detail=f"unknown journal op kind {op.kind!r}",
            )

    def _unlink(self, path: str) -> None:
        """Remove ``path`` from its parent, pruning emptied ancestors —
        mirrors what a fresh rebuild would (not) contain."""
        child, parent = path, dirname(path)
        while True:
            children = self._dirs.get(parent)
            if children is not None:
                children.discard(child)
                if children or parent == "/":
                    break
                del self._dirs[parent]
            if parent == "/":
                break
            child, parent = parent, dirname(parent)


def build_snapshot(
    dataset: str,
    update_ts: int,
    files: Sequence[FileRecord],
    chunk_ids: Optional[Sequence[ChunkId]] = None,
) -> MetadataSnapshot:
    """Assemble a snapshot, deriving the chunk list if not given."""
    if chunk_ids is None:
        chunk_ids = sorted({f.chunk_id for f in files})
    return MetadataSnapshot(dataset, update_ts, tuple(chunk_ids), tuple(files))
