"""DIESEL core: the paper's primary contribution.

Subpackages/modules:

* :mod:`repro.core.chunk` — self-contained chunk layout (Fig 5a);
* :mod:`repro.core.chunk_builder` — client-side ≥4 MB aggregation (Fig 3);
* :mod:`repro.core.meta` — key-value metadata schema (Fig 5b);
* :mod:`repro.core.snapshot` — per-dataset metadata snapshots (§4.1.3);
* :mod:`repro.core.server` — the DIESEL server (ingest, request executor,
  server cache, housekeeping);
* :mod:`repro.core.recovery` — KV rebuild from chunks (§4.1.2);
* :mod:`repro.core.client` — libDIESEL (Table 3 API);
* :mod:`repro.core.dist_cache` — task-grained distributed cache (§4.2);
* :mod:`repro.core.shared_cache` — node-level cross-task shared chunk tier;
* :mod:`repro.core.chunk_store` — pluggable chunk residency: RAM tier +
  simulated-NVMe disk tier with optional transparent compression;
* :mod:`repro.core.shuffle` — chunk-wise shuffle (§4.3, Fig 8);
* :mod:`repro.core.prefetch` — pipelined chunk prefetch over epoch plans;
* :mod:`repro.core.fuse` — FUSE-style POSIX facade;
* :mod:`repro.core.config` — system configuration + ETCD-like store.
"""

from repro.core.chunk import Chunk, ChunkFile
from repro.core.chunk_builder import ChunkBuilder
from repro.core.client import DieselClient
from repro.core.config import ConfigStore, DieselConfig
from repro.core.dist_cache import TaskCache
from repro.core.fuse import FuseMount
from repro.core.prefetch import ChunkPrefetcher
from repro.core.server import DieselServer
from repro.core.shuffle import chunkwise_shuffle, full_shuffle
from repro.core.snapshot import MetadataSnapshot, SnapshotIndex

__all__ = [
    "Chunk",
    "ChunkBuilder",
    "ChunkFile",
    "ChunkPrefetcher",
    "ConfigStore",
    "DieselClient",
    "DieselConfig",
    "DieselServer",
    "FuseMount",
    "MetadataSnapshot",
    "SnapshotIndex",
    "TaskCache",
    "chunkwise_shuffle",
    "full_shuffle",
]
