"""Sharded dataset registry: the namespace root at 1000× scale.

``DieselServer.datasets()`` used to be a single unbounded
``pscan("ds:")`` — fine for a handful of datasets, hopeless for the
millions a shared deployment accumulates (the FalconFS lesson: DL
pipelines live or die on namespace scaling).  The registry spreads the
dataset namespace over a fixed number of *registry shards*::

    reg:<shard, zero-padded>:<name>   ->  b""

Each shard is one contiguous, independently pageable key range; the
keys themselves still slot-hash across the KV instances, so shard
ranges are spread over the cluster.  ``list_page`` k-way merges the
per-shard streams into globally name-sorted pages without ever
materializing the whole namespace, and ``rebalance`` re-spreads every
entry when the deployment changes its shard count (e.g. after growing
the KV fleet).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional, Tuple

from repro.kvstore.sharded import ShardedKV
from repro.util.hashing import stable_hash

REG_PREFIX = "reg:"
#: Zero-pad width of the shard component (bounds shards at 10**4).
_SHARD_WIDTH = 4
MAX_REGISTRY_SHARDS = 10 ** _SHARD_WIDTH


def shard_prefix(shard: int) -> str:
    return f"{REG_PREFIX}{shard:0{_SHARD_WIDTH}d}:"


def registry_key(shard: int, name: str) -> str:
    return f"{shard_prefix(shard)}{name}"


class DatasetRegistry:
    """Paginated, rebalance-able index of every dataset root."""

    def __init__(self, kv: ShardedKV, n_shards: int) -> None:
        if not 1 <= n_shards <= MAX_REGISTRY_SHARDS:
            raise ValueError(
                f"registry shards must be in [1, {MAX_REGISTRY_SHARDS}]"
            )
        self.kv = kv
        self.n_shards = n_shards

    def shard_of(self, name: str) -> int:
        return stable_hash(name, self.n_shards)

    # ----------------------------------------------------------- mutation
    def add(self, name: str) -> None:
        """Register a dataset root (idempotent)."""
        self.kv.local_put(registry_key(self.shard_of(name), name), b"")

    def remove(self, name: str) -> bool:
        """Unregister a dataset root; returns whether it was present."""
        key = registry_key(self.shard_of(name), name)
        if self.kv.local_get_or_none(key) is None:
            return False
        self.kv.local_delete(key)
        return True

    def __contains__(self, name: str) -> bool:
        key = registry_key(self.shard_of(name), name)
        return self.kv.local_get_or_none(key) is not None

    # ------------------------------------------------------------ listing
    def count(self) -> int:
        return self.kv.local_pcount(REG_PREFIX)

    def occupancy(self) -> list[int]:
        """Datasets per registry shard (the dlcmd/balance probe)."""
        return [
            self.kv.local_pcount(shard_prefix(s))
            for s in range(self.n_shards)
        ]

    def _shard_names(
        self, shard: int, cursor: Optional[str], page: int
    ) -> Iterator[str]:
        """Stream one shard's names after ``cursor``, page by page."""
        prefix = shard_prefix(shard)
        kv_cursor = prefix + cursor if cursor is not None else None
        while True:
            items, kv_cursor = self.kv.local_pscan_page(
                prefix, cursor=kv_cursor, limit=page
            )
            for key, _ in items:
                yield key[len(prefix):]
            if kv_cursor is None:
                return

    def list_page(
        self, cursor: Optional[str] = None, limit: Optional[int] = None
    ) -> Tuple[list[str], Optional[str]]:
        """One globally name-sorted page of dataset names.

        ``cursor`` is the last name of the previous page; the per-shard
        streams fetch at most ``limit`` names ahead and are k-way merged
        lazily, so a page over a million-dataset registry touches
        O(shards × limit) keys.  Returns ``(names, next_cursor)``.
        """
        page = limit if limit is not None else 1024
        streams = [
            self._shard_names(s, cursor, page) for s in range(self.n_shards)
        ]
        merged = heapq.merge(*streams)
        if limit is None:
            return list(merged), None
        names: list[str] = []
        for name in merged:
            names.append(name)
            if len(names) >= limit:
                break
        next_cursor = names[-1] if len(names) >= limit else None
        return names, next_cursor

    def dataset_names(self) -> list[str]:
        """Every dataset name, sorted (materializes: prefer list_page)."""
        return self.list_page()[0]

    # --------------------------------------------------------- rebalancing
    def rebalance(self, new_n_shards: int) -> int:
        """Re-spread every entry over ``new_n_shards`` registry shards.

        Run on membership change (the shard count tracks the KV fleet).
        Streams the old shard ranges page by page and moves only entries
        whose shard assignment changed; returns how many moved.
        """
        if not 1 <= new_n_shards <= MAX_REGISTRY_SHARDS:
            raise ValueError(
                f"registry shards must be in [1, {MAX_REGISTRY_SHARDS}]"
            )
        if new_n_shards == self.n_shards:
            return 0
        old_shards = self.n_shards
        moved = 0
        for shard in range(old_shards):
            prefix = shard_prefix(shard)
            for page in self.kv.local_pscan_iter(prefix, 1024):
                for key, _ in page:
                    name = key[len(prefix):]
                    new_shard = stable_hash(name, new_n_shards)
                    if new_shard == shard:
                        continue
                    self.kv.local_delete(key)
                    self.kv.local_put(registry_key(new_shard, name), b"")
                    moved += 1
        self.n_shards = new_n_shards
        return moved
