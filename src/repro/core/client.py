"""libDIESEL: the client library (paper Table 3, §5).

Implements the full API surface::

    DL_connect  -> DieselClient(...)          DL_stat
    DL_put      -> put()                      DL_delete -> delete()
    DL_flush    -> flush()                    DL_ls     -> ls()
    DL_get      -> get()                      DL_save_meta / DL_load_meta
    DL_shuffle  -> enable_shuffle()           DL_close  -> close()

plus the housekeeping functions ``DL_purge`` and ``DL_delete_dataset``.
All data-path methods are generators that run inside the simulation; the
:class:`SyncDieselClient` wrapper drives them to completion for scripts
and examples.

Read resolution order (read flow, Fig 4): local group cache (chunk-wise
shuffle working set) → task-grained distributed cache → DIESEL server
(which itself may hit its SSD tier before HDD).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Any, Dict, Generator, Optional, Sequence

from repro.calibration import Calibration, DEFAULT
from repro.core.chunk import Chunk
from repro.core.chunk_builder import ChunkBuilder
from repro.core.config import DieselConfig
from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.meta import FileRecord
from repro.core.server import DieselServer
from repro.core.shuffle import EpochPlan, chunkwise_shuffle, full_shuffle
from repro.core.snapshot import MetadataSnapshot, SnapshotIndex
from repro.errors import ClosedError, DieselError, StaleSnapshotError
from repro.cluster.node import Node
from repro.sim.engine import Environment, Event
from repro.util.ids import ChunkIdGenerator
from repro.util.pathutil import normalize


def connect(
    env: Environment,
    node: Node,
    servers: Sequence[DieselServer],
    dataset: str,
    user: str = "",
    key: str = "",
    name: str = "client0",
    rank: int = 0,
    config: DieselConfig | None = None,
    calibration: Calibration = DEFAULT,
) -> Generator[Event, Any, "DieselClient"]:
    """DL_connect (Table 3): authenticate and open a client context.

    Credentials are checked against the first server's access table; an
    open deployment (no keys configured) accepts anything.  Returns the
    connected :class:`DieselClient`.
    """
    from repro.errors import AuthError

    if not servers:
        raise DieselError("DL_connect needs at least one DIESEL server")
    ok = yield from servers[0].call(node, "auth", user, key)
    if not ok:
        raise AuthError(user)
    return DieselClient(
        env, node, servers, dataset,
        name=name, rank=rank, config=config, calibration=calibration,
    )


class ClientStats:
    __slots__ = (
        "puts", "gets", "local_hits", "cache_hits", "server_reads",
        "chunks_sent", "bytes_written", "bytes_read",
    )

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.local_hits = 0
        self.cache_hits = 0
        self.server_reads = 0
        self.chunks_sent = 0
        self.bytes_written = 0
        self.bytes_read = 0


class DieselClient:
    """One libDIESEL context (the result of ``DL_connect``)."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        servers: Sequence[DieselServer],
        dataset: str,
        name: str = "client0",
        rank: int = 0,
        config: DieselConfig | None = None,
        calibration: Calibration = DEFAULT,
    ) -> None:
        if not servers:
            raise DieselError("DL_connect needs at least one DIESEL server")
        self.env = env
        self.node = node
        self.servers = list(servers)
        self.dataset = dataset
        self.name = name
        self.rank = rank
        self.config = config or DieselConfig()
        self.cal = calibration
        self.stats = ClientStats()
        self._rr = 0
        self._closed = False
        self._builder = ChunkBuilder(
            ChunkIdGenerator(clock=lambda: env.now),
            chunk_size=self.config.chunk_size,
        )
        self._index: Optional[SnapshotIndex] = None
        self._cache: Optional[TaskCache] = None
        self._cache_identity: Optional[CacheClient] = None
        # Chunk-wise shuffle state.
        self._shuffle_enabled = False
        self._shuffle_group_size = self.config.shuffle_group_size
        self._group_cache: "OrderedDict[str, Chunk]" = OrderedDict()
        #: In-flight chunk fetches (single-flight): encoded cid -> Event.
        self._inflight: Dict[str, Any] = {}
        self._epoch = 0

    # --------------------------------------------------------------- helpers
    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("client context is closed (DL_close was called)")

    def _server(self) -> DieselServer:
        """Round-robin over DIESEL servers (they are stateless, §4.1.1)."""
        s = self.servers[self._rr % len(self.servers)]
        self._rr += 1
        return s

    @property
    def snapshot_loaded(self) -> bool:
        return self._index is not None

    @property
    def index(self) -> SnapshotIndex:
        if self._index is None:
            raise DieselError("no metadata snapshot loaded (call DL_load_meta)")
        return self._index

    def as_cache_client(self) -> CacheClient:
        if self._cache_identity is None:
            self._cache_identity = CacheClient(self.name, self.node, self.rank)
        return self._cache_identity

    def attach_cache(self, cache: TaskCache) -> None:
        """Join a task-grained distributed cache (after its register())."""
        self._cache = cache

    # -------------------------------------------------------------- DL_put
    def put(self, path: str, data: bytes) -> Generator[Event, Any, None]:
        """DL_put: buffer a file; ship a chunk when ≥ chunk_size accrues."""
        self._check_open()
        sealed = self._builder.add(path, data)
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        # Client-side packing cost (copy into the chunk buffer + hashing).
        yield self.env.timeout(
            self.cal.diesel.client_put_overhead_s
            + len(data) * self.cal.diesel.client_put_per_byte_s
        )
        if sealed is not None:
            yield from self._send_chunk(sealed)

    def flush(self) -> Generator[Event, Any, None]:
        """DL_flush: seal and ship whatever is buffered."""
        self._check_open()
        sealed = self._builder.flush()
        if sealed is not None:
            yield from self._send_chunk(sealed)
        else:
            yield self.env.timeout(0)

    def _send_chunk(self, chunk: Chunk) -> Generator[Event, Any, None]:
        blob = chunk.encode()
        yield from self._server().call(
            self.node,
            "ingest_chunk",
            self.dataset,
            blob,
            request_bytes=len(blob),
            response_bytes=32,
        )
        self.stats.chunks_sent += 1

    # -------------------------------------------------------------- DL_get
    def _record_for(self, path: str) -> Optional[FileRecord]:
        if self._index is not None:
            return self._index.lookup(path)
        return None

    def get(self, path: str) -> Generator[Event, Any, bytes]:
        """DL_get: read one file through the Fig 4 resolution chain."""
        self._check_open()
        path = normalize(path)
        self.stats.gets += 1
        yield self.env.timeout(self.cal.diesel.api_read_overhead_s)
        record = self._record_for(path)
        # 1. Chunk-wise-shuffle working set (client-local memory).
        if record is not None and self._shuffle_enabled:
            payload = yield from self._get_via_group_cache(record)
            self.stats.bytes_read += len(payload)
            return payload
        # 2. Task-grained distributed cache (one-hop peer fetch).
        if record is not None and self._cache is not None:
            payload = yield from self._cache.read_file(
                self.as_cache_client(), record
            )
            self.stats.cache_hits += 1
            self.stats.bytes_read += len(payload)
            return payload
        # 3. DIESEL server.
        payload = yield from self._server().call(
            self.node,
            "get_file",
            self.dataset,
            path,
            response_bytes=record.length if record else None,
        )
        self.stats.server_reads += 1
        self.stats.bytes_read += len(payload)
        return payload

    def get_range(
        self, path: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """Read ``length`` bytes of a file at ``offset`` (pread semantics).

        Served from the shuffle working set when the chunk is resident;
        otherwise a server range read (only the requested bytes move).
        Reads past EOF are clamped like read(2).
        """
        self._check_open()
        path = normalize(path)
        self.stats.gets += 1
        yield self.env.timeout(self.cal.diesel.api_read_overhead_s)
        record = self._record_for(path)
        if record is not None and self._shuffle_enabled:
            whole = yield from self._get_via_group_cache(record)
            piece = whole[offset : offset + length]
            self.stats.bytes_read += len(piece)
            return piece
        piece = yield from self._server().call(
            self.node,
            "get_file_range",
            self.dataset,
            path,
            offset,
            length,
            response_bytes=min(length, record.length if record else length),
        )
        self.stats.server_reads += 1
        self.stats.bytes_read += len(piece)
        return piece

    def put_overwrite(self, path: str, data: bytes) -> Generator[Event, Any, None]:
        """Modify a file: delete the old version, then write the new one
        (§4.1.1: "DIESEL supports modifying/deleting files by first
        deleting the old file and then writing a new file").

        The old payload stays as a hole in its chunk until DL_purge.
        """
        self._check_open()
        path = normalize(path)
        exists = yield from self._server().call(
            self.node, "exists", self.dataset, path
        )
        if exists:
            yield from self._server().call(
                self.node, "delete_file", self.dataset, path
            )
        yield from self.put(path, data)
        yield from self.flush()

    def _get_via_group_cache(
        self, record: FileRecord
    ) -> Generator[Event, Any, bytes]:
        """Serve from the per-group chunk working set, fetching whole chunks.

        The cache holds at most ``shuffle_group_size`` chunks: exactly the
        §4.3 memory bound (group_size × chunk_size), ~2 GB for the paper's
        ImageNet-1K run vs the 150 GB dataset.
        """
        encoded = record.chunk_id.encode()
        chunk = self._group_cache.get(encoded)
        if chunk is None:
            inflight = self._inflight.get(encoded)
            if inflight is not None:
                # Another I/O thread of this mount is already fetching the
                # chunk (single-flight); wait for it instead of duplicating
                # the 4MB read.
                yield inflight
                chunk = self._group_cache.get(encoded)
            if chunk is None:
                done = self.env.event()
                self._inflight[encoded] = done
                try:
                    blob = yield from self._server().call(
                        self.node,
                        "get_chunk",
                        self.dataset,
                        encoded,
                        response_bytes=None,
                    )
                    chunk = Chunk.decode(blob)
                    while len(self._group_cache) >= self._shuffle_group_size:
                        self._group_cache.popitem(last=False)
                    self._group_cache[encoded] = chunk
                    self.stats.server_reads += 1
                finally:
                    del self._inflight[encoded]
                    done.succeed()
        else:
            self._group_cache.move_to_end(encoded)
            self.stats.local_hits += 1
            # In-memory extraction: negligible but non-zero.
            yield self.env.timeout(2e-7)
        return chunk.payload(record.path, verify=False)

    def working_set_bytes(self) -> int:
        return sum(len(c.data) for c in self._group_cache.values())

    # ------------------------------------------------------------- metadata
    def stat(self, path: str) -> Generator[Event, Any, dict]:
        """DL_stat: O(1) from the snapshot when loaded, else a server RPC."""
        self._check_open()
        if self._index is not None:
            yield self.env.timeout(self.cal.diesel.client_meta_lookup_s)
            return self._index.stat(path)
        result = yield from self._server().call(self.node, "stat", self.dataset, path)
        return result

    def ls(self, path: str = "/") -> Generator[Event, Any, list[str]]:
        """DL_ls: list files and folders under ``path``."""
        self._check_open()
        if self._index is not None:
            yield self.env.timeout(self.cal.diesel.client_meta_lookup_s)
            return self._index.readdir(path)
        result = yield from self._server().call(self.node, "ls", self.dataset, path)
        return result

    def save_meta(self) -> Generator[Event, Any, bytes]:
        """DL_save_meta: download the dataset's metadata snapshot blob."""
        self._check_open()
        blob = yield from self._server().call(
            self.node, "save_meta", self.dataset, response_bytes=None
        )
        return blob

    def load_meta(self, blob: bytes) -> Generator[Event, Any, SnapshotIndex]:
        """DL_load_meta: load a snapshot, verifying freshness (§4.1.3)."""
        self._check_open()
        snapshot = MetadataSnapshot.deserialize(blob)
        if snapshot.dataset != self.dataset:
            raise DieselError(
                f"snapshot is for dataset {snapshot.dataset!r}, "
                f"client is connected to {self.dataset!r}"
            )
        current_ts = yield from self._server().call(
            self.node, "dataset_ts", self.dataset
        )
        if snapshot.update_ts != current_ts:
            raise StaleSnapshotError(self.dataset, snapshot.update_ts, current_ts)
        # Building the in-memory index costs real work at load time.
        yield self.env.timeout(
            len(snapshot.files) * self.cal.diesel.client_meta_lookup_s
        )
        self._index = SnapshotIndex(snapshot)
        return self._index

    # -------------------------------------------------------------- shuffle
    def enable_shuffle(self, group_size: Optional[int] = None) -> None:
        """DL_shuffle: turn on chunk-wise shuffle mode (§4.3)."""
        self._check_open()
        if self._index is None:
            raise DieselError("chunk-wise shuffle requires a loaded snapshot")
        if group_size is not None:
            if group_size < 1:
                raise DieselError("group_size must be >= 1")
            self._shuffle_group_size = group_size
        self._shuffle_enabled = True

    def disable_shuffle(self) -> None:
        self._shuffle_enabled = False
        self._group_cache.clear()

    @property
    def shuffle_enabled(self) -> bool:
        return self._shuffle_enabled

    def epoch_file_list(self, seed: Optional[int] = None) -> EpochPlan:
        """Generate the next epoch's chunk-wise-shuffled file order.

        Each call advances the epoch counter so successive epochs get
        different orders (required to avoid overfitting, §2.1).
        """
        self._check_open()
        if not self._shuffle_enabled:
            raise DieselError("call enable_shuffle() first")
        rng = random.Random(
            seed if seed is not None else (hash(self.dataset) ^ self._epoch)
        )
        self._epoch += 1
        return chunkwise_shuffle(
            self.index.files_by_chunk(), self._shuffle_group_size, rng
        )

    def full_shuffle_list(self, seed: Optional[int] = None) -> list[str]:
        """Baseline shuffle-over-dataset order (for comparisons)."""
        self._check_open()
        rng = random.Random(seed if seed is not None else self._epoch)
        self._epoch += 1
        return full_shuffle(self.index.all_paths(), rng)

    # ---------------------------------------------------------- housekeeping
    def delete(self, path: str) -> Generator[Event, Any, None]:
        """DL_delete: tombstone one file."""
        self._check_open()
        yield from self._server().call(self.node, "delete_file", self.dataset, path)

    def purge(self) -> Generator[Event, Any, int]:
        """DL_purge: rewrite chunks with deletion holes."""
        self._check_open()
        result = yield from self._server().call(self.node, "purge", self.dataset)
        return result

    def delete_dataset(self) -> Generator[Event, Any, int]:
        """DL_delete_dataset: remove the entire dataset."""
        self._check_open()
        result = yield from self._server().call(
            self.node, "delete_dataset", self.dataset
        )
        self._index = None
        return result

    def close(self) -> None:
        """DL_close: releases the context; further calls raise ClosedError."""
        self._closed = True
        self._group_cache.clear()


class SyncDieselClient:
    """A blocking facade over :class:`DieselClient` for scripts/examples.

    Every call spawns the underlying generator as a process and runs the
    environment until it completes.  Only suitable when this client is
    the sole foreground actor (background processes still advance).
    """

    def __init__(self, client: DieselClient) -> None:
        self.client = client
        self.env = client.env

    def _run(self, gen) -> Any:
        proc = self.env.process(gen)
        return self.env.run(until=proc)

    def put(self, path: str, data: bytes) -> None:
        self._run(self.client.put(path, data))

    def flush(self) -> None:
        self._run(self.client.flush())

    def get(self, path: str) -> bytes:
        return self._run(self.client.get(path))

    def stat(self, path: str) -> dict:
        return self._run(self.client.stat(path))

    def ls(self, path: str = "/") -> list[str]:
        return self._run(self.client.ls(path))

    def save_meta(self) -> bytes:
        return self._run(self.client.save_meta())

    def load_meta(self, blob: bytes) -> SnapshotIndex:
        return self._run(self.client.load_meta(blob))

    def delete(self, path: str) -> None:
        self._run(self.client.delete(path))

    def purge(self) -> int:
        return self._run(self.client.purge())

    def delete_dataset(self) -> int:
        return self._run(self.client.delete_dataset())

    def enable_shuffle(self, group_size: Optional[int] = None) -> None:
        self.client.enable_shuffle(group_size)

    def epoch_file_list(self, seed: Optional[int] = None) -> EpochPlan:
        return self.client.epoch_file_list(seed)

    def close(self) -> None:
        self.client.close()
