"""libDIESEL: the client library (paper Table 3, §5).

Implements the full API surface::

    DL_connect  -> DieselClient(...)          DL_stat
    DL_put      -> put()                      DL_delete -> delete()
    DL_flush    -> flush()                    DL_ls     -> ls()
    DL_get      -> get()                      DL_save_meta / DL_load_meta
    DL_shuffle  -> enable_shuffle()           DL_close  -> close()

plus the housekeeping functions ``DL_purge`` and ``DL_delete_dataset``.
All data-path methods are generators that run inside the simulation; the
:class:`SyncDieselClient` wrapper drives them to completion for scripts
and examples.

Read resolution order (read flow, Fig 4): local group cache (chunk-wise
shuffle working set) → task-grained distributed cache → DIESEL server
(which itself may hit its SSD tier before HDD).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Dict, Generator, Optional, Sequence

from repro.calibration import Calibration, DEFAULT
from repro.core.chunk import Chunk
from repro.core.chunk_builder import ChunkBuilder, ChunkPipeline
from repro.core.config import DieselConfig
from repro.core.dist_cache import CacheClient, TaskCache
from repro.core.meta import FileRecord
from repro.core.meta_journal import JournalEntry
from repro.core.prefetch import ChunkPrefetcher
from repro.core.server import DieselServer
from repro.core.shuffle import EpochPlan, chunkwise_shuffle, full_shuffle
from repro.core.snapshot import MetadataSnapshot, SnapshotIndex
from repro.errors import (
    ClosedError,
    DeltaConflictError,
    DieselError,
    StaleSnapshotError,
)
from repro.cluster.node import Node
from repro.sim.engine import Environment, Event, fan_out
from repro.util.hashing import stable_hash
from repro.util.ids import sim_id_generator
from repro.util.pathutil import normalize


def connect(
    env: Environment,
    node: Node,
    servers: Sequence[DieselServer],
    dataset: str,
    user: str = "",
    key: str = "",
    name: str = "client0",
    rank: int = 0,
    config: DieselConfig | None = None,
    calibration: Calibration = DEFAULT,
) -> Generator[Event, Any, "DieselClient"]:
    """DL_connect (Table 3): authenticate and open a client context.

    Credentials are checked against the first server's access table; an
    open deployment (no keys configured) accepts anything.  Returns the
    connected :class:`DieselClient`.
    """
    from repro.errors import AuthError

    if not servers:
        raise DieselError("DL_connect needs at least one DIESEL server")
    ok = yield from servers[0].call(node, "auth", user, key)
    if not ok:
        raise AuthError(user)
    return DieselClient(
        env, node, servers, dataset,
        name=name, rank=rank, config=config, calibration=calibration,
    )


@dataclass(slots=True)
class ClientStats:
    """Cumulative libDIESEL counters (the bench-reporting seam)."""

    puts: int = 0
    gets: int = 0
    local_hits: int = 0
    cache_hits: int = 0
    #: Reads the task cache resolved from the node-level shared chunk
    #: tier (a chunk another task admitted); 0 without a shared tier.
    shared_hits: int = 0
    server_reads: int = 0
    chunks_sent: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    #: get_many() batches resolved (however many files each).
    batched_gets: int = 0
    #: Pipelined-prefetch accounting (see repro.core.prefetch).
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_wasted: int = 0
    #: Scatter-gather high-water marks: the most chunk sends /
    #: chunk+file fetches ever concurrently in flight.  Stay 0/1
    #: with the fan-out knobs at their serial defaults — the proof
    #: that the knobs really change overlap and nothing else.
    ingest_inflight_hwm: int = 0
    fetch_inflight_hwm: int = 0
    #: Times a live prefetch pipeline was re-steered at a new chunk→
    #: master map after an elastic membership change.
    membership_repins: int = 0
    #: Delta metadata plane: refresh_meta() rounds resolved with an
    #: incremental journal delta vs full-snapshot fallbacks, the ops
    #: applied in place, and the delta bytes transferred (compare with
    #: the full snapshot blob size to see the §4.1.3 win).
    delta_reloads: int = 0
    delta_ops_applied: int = 0
    delta_bytes: int = 0
    full_reloads: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}`` (the bench-reporting seam).

        Derived from the dataclass fields, so a newly added counter can
        never silently drop out of benchmark rows.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


class DieselClient:
    """One libDIESEL context (the result of ``DL_connect``)."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        servers: Sequence[DieselServer],
        dataset: str,
        name: str = "client0",
        rank: int = 0,
        config: DieselConfig | None = None,
        calibration: Calibration = DEFAULT,
    ) -> None:
        if not servers:
            raise DieselError("DL_connect needs at least one DIESEL server")
        self.env = env
        self.node = node
        self.servers = list(servers)
        self.dataset = dataset
        self.name = name
        self.rank = rank
        self.config = config or DieselConfig()
        self.cal = calibration
        self.stats = ClientStats()
        #: Attached observability recorder (``repro.obs.SpanRecorder``);
        #: None keeps every instrumentation site a single failed
        #: ``is not None`` check — the hot path allocates nothing.
        self.recorder = None
        self._rr = 0
        self._closed = False
        self._builder = ChunkBuilder(
            sim_id_generator(self.name, clock=lambda: env.now),
            chunk_size=self.config.chunk_size,
        )
        self._index: Optional[SnapshotIndex] = None
        self._cache: Optional[TaskCache] = None
        self._cache_identity: Optional[CacheClient] = None
        # Chunk-wise shuffle state.
        self._shuffle_enabled = False
        self._shuffle_group_size = self.config.shuffle_group_size
        self._group_cache: "OrderedDict[str, Chunk]" = OrderedDict()
        #: In-flight chunk fetches (single-flight): encoded cid -> Event.
        #: Shared by demand reads and the prefetch pipeline, so a chunk
        #: is never transferred twice no matter who asks first.
        self._inflight: Dict[str, Any] = {}
        self._prefetcher: Optional["ChunkPrefetcher"] = None
        #: Lazy async ingest sink (only when ingest_pipeline_depth > 1).
        self._ingest: Optional[ChunkPipeline] = None
        self._epoch = 0

    # --------------------------------------------------------------- helpers
    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("client context is closed (DL_close was called)")

    def _server(self) -> DieselServer:
        """Round-robin over DIESEL servers (they are stateless, §4.1.1)."""
        s = self.servers[self._rr % len(self.servers)]
        self._rr += 1
        return s

    def preferred_server(self, encoded_cid: str) -> DieselServer:
        """Stable chunk→server placement (the scatter-gather seam).

        Concurrent fetches advancing the shared round-robin cursor would
        make placement depend on interleaving order; hashing the chunk
        id pins each chunk to one server deterministically and spreads a
        scattered batch across all of them.
        """
        return self.servers[stable_hash(encoded_cid, len(self.servers))]

    @property
    def snapshot_loaded(self) -> bool:
        return self._index is not None

    @property
    def index(self) -> SnapshotIndex:
        if self._index is None:
            raise DieselError("no metadata snapshot loaded (call DL_load_meta)")
        return self._index

    def as_cache_client(self) -> CacheClient:
        if self._cache_identity is None:
            self._cache_identity = CacheClient(self.name, self.node, self.rank)
        return self._cache_identity

    def attach_cache(self, cache: TaskCache) -> None:
        """Join a task-grained distributed cache (after its register())."""
        if cache is self._cache:
            return
        self._cache = cache
        # Elastic membership: when scale_up/scale_down move chunk
        # ownership, steer the live prefetch pipeline at the new map.
        cache.add_membership_listener(self._on_cache_membership)

    def _on_cache_membership(self, event: str, names) -> None:
        cache = self._cache
        if cache is None or self._closed:
            return
        if self._prefetcher is not None and self._prefetcher.active:
            self._prefetcher.repin(cache.chunk_owner_node)
            self.stats.membership_repins += 1

    # -------------------------------------------------------------- DL_put
    def put(self, path: str, data: bytes) -> Generator[Event, Any, None]:
        """DL_put: buffer a file; ship a chunk when ≥ chunk_size accrues."""
        self._check_open()
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        sealed = self._builder.add(path, data)
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        # Client-side packing cost (copy into the chunk buffer + hashing).
        yield self.env.timeout(
            self.cal.diesel.client_put_overhead_s
            + len(data) * self.cal.diesel.client_put_per_byte_s
        )
        if sealed is not None:
            yield from self._dispatch_chunk(sealed)
        if rec is not None:
            # "pack" puts only buffered; "ship" puts sealed a chunk and
            # (synchronously or via the pipeline) dispatched it.
            rec.record("put", "pack" if sealed is None else "ship",
                       self.env.now - t0, actor=self.name, path=path)

    def flush(self) -> Generator[Event, Any, None]:
        """DL_flush: seal and ship whatever is buffered; wait for every
        pipelined send still in flight."""
        self._check_open()
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        sealed = self._builder.flush()
        if sealed is not None:
            yield from self._dispatch_chunk(sealed)
        else:
            yield self.env.timeout(0)
        if self._ingest is not None:
            yield from self._ingest.drain()
        if rec is not None:
            rec.record("flush", "drain", self.env.now - t0, actor=self.name)

    def put_many(
        self, items: Sequence[tuple[str, bytes]]
    ) -> Generator[Event, Any, int]:
        """Batched DL_put + DL_flush: ingest a whole listing of files.

        With ``ingest_pipeline_depth > 1`` chunk sends overlap the
        packing of later files (§4.1.1 write overlap); the final flush
        waits for every send.  Returns the number of chunks shipped.
        """
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        before = self.stats.chunks_sent
        for path, data in items:
            yield from self.put(path, data)
        yield from self.flush()
        if rec is not None:
            rec.record("put_many", "total", self.env.now - t0,
                       actor=self.name, files=len(items),
                       chunks=self.stats.chunks_sent - before)
        return self.stats.chunks_sent - before

    def _note_ingest_inflight(self, n: int) -> None:
        if n > self.stats.ingest_inflight_hwm:
            self.stats.ingest_inflight_hwm = n

    def _note_fetch_inflight(self, n: int) -> None:
        if n > self.stats.fetch_inflight_hwm:
            self.stats.fetch_inflight_hwm = n

    def _dispatch_chunk(self, chunk: Chunk) -> Generator[Event, Any, None]:
        """Ship a sealed chunk — synchronously at depth 1 (the legacy
        path, byte-identical timing), else through the ingest pipeline."""
        if self.config.ingest_pipeline_depth <= 1:
            yield from self._send_chunk(chunk)
            return
        if self._ingest is None:
            self._ingest = ChunkPipeline(
                self.env,
                self._send_chunk,
                self.config.ingest_pipeline_depth,
                watermark=self._note_ingest_inflight,
            )
        yield from self._ingest.submit(chunk)

    def _send_chunk(self, chunk: Chunk) -> Generator[Event, Any, None]:
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        blob = chunk.encode()
        yield from self._server().call(
            self.node,
            "ingest_chunk",
            self.dataset,
            blob,
            request_bytes=len(blob),
            response_bytes=32,
        )
        self.stats.chunks_sent += 1
        if rec is not None:
            rec.record("chunk_send", "server", self.env.now - t0,
                       actor=self.name, bytes=len(blob))

    # -------------------------------------------------------------- DL_get
    def _record_for(self, path: str) -> Optional[FileRecord]:
        if self._index is not None:
            return self._index.lookup(path)
        return None

    def get(self, path: str) -> Generator[Event, Any, bytes]:
        """DL_get: read one file through the Fig 4 resolution chain."""
        self._check_open()
        path = normalize(path)
        self.stats.gets += 1
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        yield self.env.timeout(self.cal.diesel.api_read_overhead_s)
        record = self._record_for(path)
        # 1. Chunk-wise-shuffle working set (client-local memory).
        if record is not None and self._shuffle_enabled:
            if rec is not None:
                layer = (
                    "group_cache"
                    if record.chunk_id.encode() in self._group_cache
                    else "server"
                )
            payload = yield from self._get_via_group_cache(record)
            self.stats.bytes_read += len(payload)
            if rec is not None:
                rec.record("get", layer, self.env.now - t0,
                           actor=self.name, path=path)
                rec.count("read", layer)
            return payload
        # 2. Task-grained distributed cache (one-hop peer fetch), backed
        #    by the node-level shared chunk tier when one is attached —
        #    a read can then resolve from a chunk another task admitted.
        if record is not None and self._cache is not None:
            shared_before = (
                self._cache.shared_hits
                if self._cache.shared is not None else 0
            )
            payload = yield from self._cache.read_file(
                self.as_cache_client(), record
            )
            if (
                self._cache.shared is not None
                and self._cache.shared_hits > shared_before
            ):
                self.stats.shared_hits += 1
            self.stats.cache_hits += 1
            self.stats.bytes_read += len(payload)
            if rec is not None:
                # Exact attribution (cache hit vs server fall-through)
                # requires the recorder to be attached to the TaskCache
                # as well; it publishes which layer served the read.
                layer = getattr(self._cache, "last_resolution", "task_cache")
                rec.record("get", layer, self.env.now - t0,
                           actor=self.name, path=path)
                rec.count("read", layer)
            return payload
        # 3. DIESEL server.
        payload = yield from self._server().call(
            self.node,
            "get_file",
            self.dataset,
            path,
            response_bytes=record.length if record else None,
        )
        self.stats.server_reads += 1
        self.stats.bytes_read += len(payload)
        if rec is not None:
            rec.record("get", "server", self.env.now - t0,
                       actor=self.name, path=path)
            rec.count("read", "server")
        return payload

    def get_many(
        self, paths: Sequence[str]
    ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Batched DL_get: resolve a whole mini-batch in one pass.

        Follows the same Fig 4 resolution chain as :meth:`get`, but
        amortized: paths are grouped by chunk so each group-cache chunk
        is resolved once (shuffle mode), and everything that has to go
        to a DIESEL server travels in a single ``get_files`` RPC whose
        request executor merges the batch into chunk-wise range reads.
        Returns ``{path: payload}``.
        """
        self._check_open()
        paths = [normalize(p) for p in paths]
        self.stats.gets += len(paths)
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        yield self.env.timeout(self.cal.diesel.api_read_overhead_s)
        out: Dict[str, bytes] = {}
        remote: list[str] = []
        if self._shuffle_enabled and self._index is not None:
            # Group the batch by chunk; resolve each chunk once.
            by_chunk: "OrderedDict[str, list[FileRecord]]" = OrderedDict()
            for path in paths:
                record = self._record_for(path)
                if record is None:
                    remote.append(path)
                else:
                    by_chunk.setdefault(
                        record.chunk_id.encode(), []
                    ).append(record)
            if self.config.read_fanout > 1:
                resolved = yield from self._resolve_groups_fanout(by_chunk)
            else:
                resolved = {}
                for encoded, records in by_chunk.items():
                    resident = encoded in self._group_cache
                    if self._prefetcher is not None:
                        self._prefetcher.on_access(
                            encoded, resident=resident,
                            in_flight=encoded in self._inflight,
                        )
                    if resident:
                        chunk = self._group_cache[encoded]
                        self._group_cache.move_to_end(encoded)
                        self.stats.local_hits += len(records)
                        if rec is not None:
                            rec.count("read", "group_cache", len(records))
                        yield self.env.timeout(2e-7 * len(records))
                    else:
                        chunk = yield from self._ensure_chunk(encoded)
                        self.stats.local_hits += len(records) - 1
                        if rec is not None:
                            # One file pays the chunk fetch; the rest of
                            # the chunk's files read locally.
                            rec.count("read", "server")
                            if len(records) > 1:
                                rec.count(
                                    "read", "group_cache", len(records) - 1
                                )
                    resolved[encoded] = chunk
            for encoded, records in by_chunk.items():
                chunk = resolved[encoded]
                for record in records:
                    payload = chunk.payload(record.path, verify=False)
                    out[record.path] = payload
                    self.stats.bytes_read += len(payload)
        elif self._cache is not None and self._index is not None:
            # Task-grained distributed cache: one-hop fetch per file
            # from the owning master (already chunk-resident there).
            records: list[FileRecord] = []
            for path in paths:
                record = self._record_for(path)
                if record is None:
                    remote.append(path)
                else:
                    records.append(record)
            if self.config.read_fanout > 1 and records:
                payloads = yield from fan_out(
                    self.env,
                    [
                        self._cache.read_file(self.as_cache_client(), r)
                        for r in records
                    ],
                    self.config.read_fanout,
                    name="cache_fanout",
                    watermark=self._note_fetch_inflight,
                )
                for record, payload in zip(records, payloads):
                    self.stats.cache_hits += 1
                    out[record.path] = payload
                    self.stats.bytes_read += len(payload)
            else:
                for record in records:
                    payload = yield from self._cache.read_file(
                        self.as_cache_client(), record
                    )
                    self.stats.cache_hits += 1
                    out[record.path] = payload
                    self.stats.bytes_read += len(payload)
            if rec is not None and records:
                rec.count("read", "task_cache", len(records))
        else:
            remote = list(paths)
        if remote:
            known = [self._record_for(p) for p in remote]
            response_bytes = (
                sum(r.length for r in known)
                if all(r is not None for r in known) else None
            )
            got = yield from self._server().call(
                self.node,
                "get_files",
                self.dataset,
                tuple(remote),
                response_bytes=response_bytes,
            )
            self.stats.server_reads += 1
            for path, payload in got.items():
                out[path] = payload
                self.stats.bytes_read += len(payload)
            if rec is not None:
                rec.count("read", "server", len(got))
        self.stats.batched_gets += 1
        if rec is not None:
            rec.record("get_many", "total", self.env.now - t0,
                       actor=self.name, files=len(paths))
        return out

    def _resolve_groups_fanout(
        self, by_chunk: "OrderedDict[str, list[FileRecord]]"
    ) -> Generator[Event, Any, Dict[str, Chunk]]:
        """Scatter a batch's chunk-group misses across servers.

        Residents are served inline (same accounting as the serial
        path); the misses fetch with up to ``read_fanout`` transfers in
        flight.  Single-flight still holds — concurrent batches and the
        prefetcher share ``_inflight``, so no chunk moves twice.
        """
        rec = self.recorder
        resolved: Dict[str, Chunk] = {}
        missing: list[str] = []
        for encoded, records in by_chunk.items():
            resident = encoded in self._group_cache
            if self._prefetcher is not None:
                self._prefetcher.on_access(
                    encoded, resident=resident,
                    in_flight=encoded in self._inflight,
                )
            if resident:
                chunk = self._group_cache[encoded]
                self._group_cache.move_to_end(encoded)
                self.stats.local_hits += len(records)
                if rec is not None:
                    rec.count("read", "group_cache", len(records))
                yield self.env.timeout(2e-7 * len(records))
                resolved[encoded] = chunk
            else:
                self.stats.local_hits += len(records) - 1
                if rec is not None:
                    rec.count("read", "server")
                    if len(records) > 1:
                        rec.count("read", "group_cache", len(records) - 1)
                missing.append(encoded)
        if missing:
            chunks = yield from fan_out(
                self.env,
                [self._ensure_chunk(e) for e in missing],
                self.config.read_fanout,
                name="read_fanout",
            )
            resolved.update(zip(missing, chunks))
        return resolved

    def get_range(
        self, path: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """Read ``length`` bytes of a file at ``offset`` (pread semantics).

        Served from the shuffle working set when the chunk is resident;
        otherwise a server range read (only the requested bytes move).
        Reads past EOF are clamped like read(2).
        """
        self._check_open()
        path = normalize(path)
        self.stats.gets += 1
        yield self.env.timeout(self.cal.diesel.api_read_overhead_s)
        record = self._record_for(path)
        if record is not None and self._shuffle_enabled:
            whole = yield from self._get_via_group_cache(record)
            piece = whole[offset : offset + length]
            self.stats.bytes_read += len(piece)
            return piece
        piece = yield from self._server().call(
            self.node,
            "get_file_range",
            self.dataset,
            path,
            offset,
            length,
            response_bytes=min(length, record.length if record else length),
        )
        self.stats.server_reads += 1
        self.stats.bytes_read += len(piece)
        return piece

    def put_overwrite(self, path: str, data: bytes) -> Generator[Event, Any, None]:
        """Modify a file: delete the old version, then write the new one
        (§4.1.1: "DIESEL supports modifying/deleting files by first
        deleting the old file and then writing a new file").

        The old payload stays as a hole in its chunk until DL_purge.
        """
        self._check_open()
        path = normalize(path)
        # Pin one server for the read-check + delete pair: interleaving
        # the round-robin cursor with concurrent pipelined sends must
        # not split a logical operation across servers.
        server = self._server()
        exists = yield from server.call(
            self.node, "exists", self.dataset, path
        )
        if exists:
            yield from server.call(
                self.node, "delete_file", self.dataset, path
            )
        yield from self.put(path, data)
        yield from self.flush()

    def _cache_capacity(self) -> int:
        """Group-cache chunk budget: the §4.3 bound, plus the pipeline's
        look-ahead window while a prefetcher is active."""
        extra = (
            self._prefetcher.depth
            if self._prefetcher is not None and self._prefetcher.active
            else 0
        )
        return self._shuffle_group_size + extra

    def _admit_chunk(self, encoded: str, chunk: Chunk) -> None:
        while len(self._group_cache) >= self._cache_capacity():
            # LRU, but skip chunks the pipeline fetched ahead and the
            # consumer has not reached yet (evicting those would waste
            # the transfer and force a duplicate fetch).
            victim = next(
                (
                    key for key in self._group_cache
                    if self._prefetcher is None
                    or not self._prefetcher.protects(key)
                ),
                next(iter(self._group_cache)),
            )
            del self._group_cache[victim]
            if self._prefetcher is not None:
                self._prefetcher.on_evict(victim)
        self._group_cache[encoded] = chunk

    def _ensure_chunk(self, encoded: str) -> Generator[Event, Any, Chunk]:
        """Resolve one chunk into the group cache (single-flight).

        Used by both demand reads and the prefetch pipeline.  If another
        fetch of the same chunk is in flight, waits for it instead of
        duplicating the 4 MB transfer; if the chunk was evicted while
        waiting, loops and re-fetches.
        """
        while True:
            chunk = self._group_cache.get(encoded)
            if chunk is not None:
                self._group_cache.move_to_end(encoded)
                return chunk
            pending = self._inflight.get(encoded)
            if pending is not None:
                yield pending
                continue  # re-check: hit, or evicted-while-waiting
            done = self.env.event()
            self._inflight[encoded] = done
            self._note_fetch_inflight(len(self._inflight))
            rec = self.recorder
            t0 = self.env.now if rec is not None else 0.0
            # Scattered fetches use stable placement; the serial default
            # keeps the legacy round-robin pick (identical behavior).
            server = (
                self.preferred_server(encoded)
                if self.config.read_fanout > 1
                else self._server()
            )
            try:
                blob = yield from server.call(
                    self.node,
                    "get_chunk",
                    self.dataset,
                    encoded,
                    response_bytes=None,
                )
                chunk = Chunk.decode(blob)
                self._admit_chunk(encoded, chunk)
                self.stats.server_reads += 1
            finally:
                del self._inflight[encoded]
                done.succeed()
            if rec is not None:
                rec.record("chunk_fetch", "server", self.env.now - t0,
                           actor=self.name, chunk=encoded[:12])
            return chunk

    def _get_via_group_cache(
        self, record: FileRecord
    ) -> Generator[Event, Any, bytes]:
        """Serve from the per-group chunk working set, fetching whole chunks.

        The cache holds at most ``shuffle_group_size`` chunks — exactly
        the §4.3 memory bound (group_size × chunk_size), ~2 GB for the
        paper's ImageNet-1K run vs the 150 GB dataset — plus the
        prefetch pipeline's ``prefetch_depth`` look-ahead when enabled.
        """
        encoded = record.chunk_id.encode()
        resident = encoded in self._group_cache
        if self._prefetcher is not None:
            self._prefetcher.on_access(
                encoded, resident=resident,
                in_flight=encoded in self._inflight,
            )
        if resident:
            chunk = self._group_cache[encoded]
            self._group_cache.move_to_end(encoded)
            self.stats.local_hits += 1
            # In-memory extraction: negligible but non-zero.
            yield self.env.timeout(2e-7)
        else:
            chunk = yield from self._ensure_chunk(encoded)
        return chunk.payload(record.path, verify=False)

    def working_set_bytes(self) -> int:
        return sum(len(c.data) for c in self._group_cache.values())

    # ------------------------------------------------------------- metadata
    def stat(self, path: str) -> Generator[Event, Any, dict]:
        """DL_stat: O(1) from the snapshot when loaded, else a server RPC."""
        self._check_open()
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        if self._index is not None:
            yield self.env.timeout(self.cal.diesel.client_meta_lookup_s)
            result = self._index.stat(path)
            if rec is not None:
                rec.record("stat", "snapshot", self.env.now - t0,
                           actor=self.name, path=path)
            return result
        result = yield from self._server().call(self.node, "stat", self.dataset, path)
        if rec is not None:
            rec.record("stat", "server", self.env.now - t0,
                       actor=self.name, path=path)
        return result

    def ls(self, path: str = "/") -> Generator[Event, Any, list[str]]:
        """DL_ls: list files and folders under ``path``."""
        self._check_open()
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        if self._index is not None:
            yield self.env.timeout(self.cal.diesel.client_meta_lookup_s)
            result = self._index.readdir(path)
            if rec is not None:
                rec.record("ls", "snapshot", self.env.now - t0,
                           actor=self.name, path=path)
            return result
        result = yield from self._server().call(self.node, "ls", self.dataset, path)
        if rec is not None:
            rec.record("ls", "server", self.env.now - t0,
                       actor=self.name, path=path)
        return result

    def save_meta(self) -> Generator[Event, Any, bytes]:
        """DL_save_meta: download the dataset's metadata snapshot blob."""
        self._check_open()
        blob = yield from self._server().call(
            self.node, "save_meta", self.dataset, response_bytes=None
        )
        return blob

    def load_meta(self, blob: bytes) -> Generator[Event, Any, SnapshotIndex]:
        """DL_load_meta: load a snapshot, verifying freshness (§4.1.3)."""
        self._check_open()
        snapshot = MetadataSnapshot.deserialize(blob)
        if snapshot.dataset != self.dataset:
            raise DieselError(
                f"snapshot is for dataset {snapshot.dataset!r}, "
                f"client is connected to {self.dataset!r}"
            )
        current_ts = yield from self._server().call(
            self.node, "dataset_ts", self.dataset
        )
        if snapshot.update_ts != current_ts:
            raise StaleSnapshotError(self.dataset, snapshot.update_ts, current_ts)
        # Building the in-memory index costs real work at load time.
        yield self.env.timeout(
            len(snapshot.files) * self.cal.diesel.client_meta_lookup_s
        )
        self._index = SnapshotIndex(snapshot)
        return self._index

    def refresh_meta(self) -> Generator[Event, Any, SnapshotIndex]:
        """Bring the loaded snapshot up to date incrementally.

        Asks a server for the mutation-journal delta since the index's
        version and applies it in place — O(delta) work and bytes, not
        O(dataset).  Falls back to a full ``save_meta``/``load_meta``
        round when the client's version has dropped past the journal's
        compaction horizon (or a delta fails to apply).  Returns the
        (possibly replaced) live index.
        """
        self._check_open()
        if self._index is None:
            raise DieselError("no metadata snapshot loaded (call DL_load_meta)")
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        resp = yield from self._server().call(
            self.node, "load_meta_delta", self.dataset, self._index.update_ts
        )
        if resp["mode"] == "delta":
            blobs = resp["entries"]
            entries = [JournalEntry.decode(b) for b in blobs]
            try:
                applied = self._index.apply_delta(entries)
            except DeltaConflictError:
                # Journal and index disagree (e.g. a competing refresh
                # already applied part of the range): reload in full.
                pass
            else:
                self.stats.delta_reloads += 1
                self.stats.delta_ops_applied += applied
                self.stats.delta_bytes += sum(len(b) for b in blobs)
                # In-place apply costs one index update per op.
                yield self.env.timeout(
                    applied * self.cal.diesel.client_meta_lookup_s
                )
                if rec is not None:
                    rec.record("refresh_meta", "delta", self.env.now - t0,
                               actor=self.name, ops=applied)
                return self._index
        # Horizon passed (or conflict): full snapshot round trip.
        self.stats.full_reloads += 1
        blob = yield from self.save_meta()
        index = yield from self.load_meta(blob)
        if rec is not None:
            rec.record("refresh_meta", "full", self.env.now - t0,
                       actor=self.name, ops=len(index.snapshot.files))
        return index

    # -------------------------------------------------------------- shuffle
    def enable_shuffle(self, group_size: Optional[int] = None) -> None:
        """DL_shuffle: turn on chunk-wise shuffle mode (§4.3)."""
        self._check_open()
        if self._index is None:
            raise DieselError("chunk-wise shuffle requires a loaded snapshot")
        if group_size is not None:
            if group_size < 1:
                raise DieselError("group_size must be >= 1")
            self._shuffle_group_size = group_size
        self._shuffle_enabled = True

    def disable_shuffle(self) -> None:
        self.cancel_prefetch()
        self._shuffle_enabled = False
        self._group_cache.clear()

    @property
    def shuffle_enabled(self) -> bool:
        return self._shuffle_enabled

    @property
    def prefetcher(self) -> Optional[ChunkPrefetcher]:
        """The active chunk prefetch pipeline, if any."""
        return self._prefetcher

    def start_prefetch(
        self, plan: EpochPlan, depth: Optional[int] = None
    ) -> ChunkPrefetcher:
        """Start (or restart) the pipelined chunk prefetcher for ``plan``.

        Cancels any previous pipeline first.  ``depth`` defaults to
        ``DieselConfig.prefetch_depth``.
        """
        self._check_open()
        if not self._shuffle_enabled:
            raise DieselError("prefetch requires shuffle mode (DL_shuffle)")
        self.cancel_prefetch()
        self._prefetcher = ChunkPrefetcher(
            self, plan, depth if depth is not None else self.config.prefetch_depth
        )
        return self._prefetcher

    def cancel_prefetch(self) -> None:
        """Stop the prefetch pipeline and interrupt in-flight fetches."""
        if self._prefetcher is not None:
            self._prefetcher.cancel()
            self._prefetcher = None

    def _epoch_seed(self, seed: Optional[int]) -> int:
        """Per-epoch RNG seed.  A caller-fixed seed is *mixed with* the
        epoch counter: the epoch sequence is reproducible, yet successive
        epochs still get different orders (§2.1's anti-overfitting
        contract — a bare fixed seed used to repeat the same order)."""
        if seed is None:
            return hash((self.dataset, self._epoch))
        return hash((seed, self._epoch))

    def epoch_file_list(self, seed: Optional[int] = None) -> EpochPlan:
        """Generate the next epoch's chunk-wise-shuffled file order.

        Each call advances the epoch counter so successive epochs get
        different orders (required to avoid overfitting, §2.1) — even
        when ``seed`` is fixed, which makes the whole epoch *sequence*
        (not each epoch) reproducible.  When
        ``DieselConfig.prefetch_depth > 0`` the plan also (re)starts the
        pipelined chunk prefetcher over its chunk schedule.
        """
        self._check_open()
        if not self._shuffle_enabled:
            raise DieselError("call enable_shuffle() first")
        rng = random.Random(self._epoch_seed(seed))
        self._epoch += 1
        # Under locality placement, build owner-aligned groups so the
        # affinity scheduler can pin each group to its co-located worker.
        owner_of = None
        if (
            self._cache is not None
            and getattr(self._cache, "placement", "hash") == "locality"
        ):
            owner_of = self._cache.chunk_owner_node
        plan = chunkwise_shuffle(
            self.index.files_by_chunk(), self._shuffle_group_size, rng,
            owner_of=owner_of,
        )
        if self.config.prefetch_depth > 0:
            self.start_prefetch(plan)
        return plan

    def full_shuffle_list(self, seed: Optional[int] = None) -> list[str]:
        """Baseline shuffle-over-dataset order (for comparisons)."""
        self._check_open()
        rng = random.Random(self._epoch_seed(seed))
        self._epoch += 1
        return full_shuffle(self.index.all_paths(), rng)

    # ---------------------------------------------------------- housekeeping
    def delete(self, path: str) -> Generator[Event, Any, None]:
        """DL_delete: tombstone one file."""
        self._check_open()
        yield from self._server().call(self.node, "delete_file", self.dataset, path)

    def purge(self) -> Generator[Event, Any, int]:
        """DL_purge: rewrite chunks with deletion holes."""
        self._check_open()
        result = yield from self._server().call(self.node, "purge", self.dataset)
        return result

    def delete_dataset(self) -> Generator[Event, Any, int]:
        """DL_delete_dataset: remove the entire dataset."""
        self._check_open()
        result = yield from self._server().call(
            self.node, "delete_dataset", self.dataset
        )
        self._index = None
        return result

    def close(self) -> None:
        """DL_close: releases the context; further calls raise ClosedError."""
        self.cancel_prefetch()
        if self._ingest is not None:
            self._ingest.cancel()
            self._ingest = None
        self._closed = True
        self._group_cache.clear()


class SyncDieselClient:
    """A blocking facade over :class:`DieselClient` for scripts/examples.

    Every call spawns the underlying generator as a process and runs the
    environment until it completes.  Only suitable when this client is
    the sole foreground actor (background processes still advance).
    """

    def __init__(self, client: DieselClient) -> None:
        self.client = client
        self.env = client.env

    def _run(self, gen) -> Any:
        proc = self.env.process(gen)
        return self.env.run(until=proc)

    def put(self, path: str, data: bytes) -> None:
        self._run(self.client.put(path, data))

    def flush(self) -> None:
        self._run(self.client.flush())

    def put_many(self, items: Sequence[tuple[str, bytes]]) -> int:
        return self._run(self.client.put_many(items))

    def get(self, path: str) -> bytes:
        return self._run(self.client.get(path))

    def get_many(self, paths: Sequence[str]) -> Dict[str, bytes]:
        return self._run(self.client.get_many(paths))

    def stat(self, path: str) -> dict:
        return self._run(self.client.stat(path))

    def ls(self, path: str = "/") -> list[str]:
        return self._run(self.client.ls(path))

    def save_meta(self) -> bytes:
        return self._run(self.client.save_meta())

    def load_meta(self, blob: bytes) -> SnapshotIndex:
        return self._run(self.client.load_meta(blob))

    def refresh_meta(self) -> SnapshotIndex:
        return self._run(self.client.refresh_meta())

    def delete(self, path: str) -> None:
        self._run(self.client.delete(path))

    def purge(self) -> int:
        return self._run(self.client.purge())

    def delete_dataset(self) -> int:
        return self._run(self.client.delete_dataset())

    def enable_shuffle(self, group_size: Optional[int] = None) -> None:
        self.client.enable_shuffle(group_size)

    def epoch_file_list(self, seed: Optional[int] = None) -> EpochPlan:
        return self.client.epoch_file_list(seed)

    def close(self) -> None:
        self.client.close()
