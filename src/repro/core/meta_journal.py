"""Per-dataset mutation journal: the delta metadata plane.

§4.1.3 snapshots make steady-state metadata reads free, but any mutation
bumps the dataset ``update_ts`` and used to force every client through a
full ``DL_save_meta`` blob download plus an O(dataset) index rebuild.
The journal removes that cliff: every metadata mutation (chunk ingest,
file delete, chunk drop) appends one entry keyed by the monotonic
``update_ts`` it produced, and a client holding version *v* fetches only
the entries in ``(v, current]`` and patches its
:class:`~repro.core.snapshot.SnapshotIndex` in place.

The journal lives in the shared KV cluster — not in server memory — so
any of the stateless DIESEL servers can serve any client's delta::

    jr:<ds>:<ts, zero-padded>   one JournalEntry (the ops of one mutation)
    jrm:<ds>                    journal meta: (oldest ts, newest ts, count)

Versions are contiguous (every ``update_ts`` bump journals exactly one
entry), so a delta fetch is ``O(delta)`` point gets — no scan.  The
journal is compacted past a configurable horizon: once more than
``horizon`` entries are retained, the oldest are dropped, and a client
whose version predates the oldest retained entry falls back to a full
snapshot reload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import DieselError
from repro.kvstore.sharded import ShardedKV

_U32 = struct.Struct(">I")
_ENTRY_HEAD = struct.Struct(">QI")  # ts, op count
_OP_HEAD = struct.Struct(">BII")  # kind, path len, payload len
_META = struct.Struct(">QQI")  # oldest ts, newest ts, count

#: Upsert one file record (payload = encoded FileRecord).
OP_APPEND = 0
#: Remove one path (payload empty).
OP_DELETE = 1
#: Add one chunk ID to the dataset's chunk list (payload = raw chunk id).
OP_CHUNK_ADD = 2
#: Drop one chunk ID from the dataset's chunk list (payload = raw id).
OP_CHUNK_DROP = 3

_KINDS = frozenset({OP_APPEND, OP_DELETE, OP_CHUNK_ADD, OP_CHUNK_DROP})


def journal_key(dataset: str, ts: int) -> str:
    """Journal-entry key; zero-padded so key order equals version order."""
    return f"jr:{dataset}:{ts:020d}"


def journal_prefix(dataset: str) -> str:
    return f"jr:{dataset}:"


def journal_meta_key(dataset: str) -> str:
    return f"jrm:{dataset}"


@dataclass(frozen=True)
class JournalOp:
    """One mutation primitive inside a journal entry."""

    kind: int
    path: str = ""
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise DieselError(f"unknown journal op kind {self.kind!r}")


@dataclass(frozen=True)
class JournalEntry:
    """All ops of one metadata mutation, at its ``update_ts``.

    One chunk ingest appends many files at a single timestamp, so an
    entry carries a batch of ops; the dataset version history maps 1:1
    to journal entries, not to individual ops.
    """

    ts: int
    ops: Tuple[JournalOp, ...]

    def encode(self) -> bytes:
        parts = [_ENTRY_HEAD.pack(self.ts, len(self.ops))]
        for op in self.ops:
            path = op.path.encode("utf-8")
            parts.append(_OP_HEAD.pack(op.kind, len(path), len(op.payload)))
            parts.append(path)
            parts.append(op.payload)
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "JournalEntry":
        ts, n_ops = _ENTRY_HEAD.unpack_from(blob, 0)
        pos = _ENTRY_HEAD.size
        ops = []
        for _ in range(n_ops):
            kind, path_len, payload_len = _OP_HEAD.unpack_from(blob, pos)
            pos += _OP_HEAD.size
            path = blob[pos : pos + path_len].decode("utf-8")
            pos += path_len
            payload = blob[pos : pos + payload_len]
            pos += payload_len
            ops.append(JournalOp(kind, path, payload))
        return cls(ts, tuple(ops))


class MetaJournal:
    """KV-backed mutation journal with horizon compaction.

    All methods are zero-cost local KV operations (the recording server
    charges its KV pipeline cost separately); state is fully shared
    through the KV cluster, so every co-located server sees one journal.
    """

    def __init__(self, kv: ShardedKV, horizon: int) -> None:
        if horizon < 0:
            raise ValueError("journal horizon must be >= 0")
        self.kv = kv
        self.horizon = horizon

    # ----------------------------------------------------------- recording
    def _meta(self, dataset: str) -> Optional[Tuple[int, int, int]]:
        blob = self.kv.local_get_or_none(journal_meta_key(dataset))
        if blob is None:
            return None
        return _META.unpack(blob)

    def record(
        self, dataset: str, ts: int, ops: Sequence[JournalOp]
    ) -> int:
        """Journal one mutation at version ``ts``; compacts past the
        horizon.  Returns the number of KV pairs written (0 when
        journaling is disabled, i.e. ``horizon == 0``)."""
        if self.horizon == 0 or not ops:
            return 0
        meta = self._meta(dataset)
        if meta is None:
            oldest, count = ts, 1
        else:
            oldest, newest, count = meta
            if ts <= newest:
                raise DieselError(
                    f"journal for {dataset!r} is at ts {newest}, "
                    f"cannot record ts {ts}"
                )
            count += 1
        entry = JournalEntry(ts, tuple(ops))
        self.kv.local_put(journal_key(dataset, ts), entry.encode())
        while count > self.horizon:
            self.kv.local_delete(journal_key(dataset, oldest))
            oldest += 1
            count -= 1
        self.kv.local_put(
            journal_meta_key(dataset), _META.pack(oldest, ts, count)
        )
        return 2

    def drop(self, dataset: str) -> int:
        """Remove the dataset's whole journal (DL_delete_dataset)."""
        meta = self._meta(dataset)
        if meta is None:
            return 0
        oldest, newest, _ = meta
        for ts in range(oldest, newest + 1):
            key = journal_key(dataset, ts)
            if self.kv.local_get_or_none(key) is not None:
                self.kv.local_delete(key)
        self.kv.local_delete(journal_meta_key(dataset))
        return newest - oldest + 1

    def reset(self, dataset: str) -> int:
        """Hard-delete every journal key for ``dataset`` by prefix sweep.

        Unlike :meth:`drop`, trusts nothing: after a KV shard loss the
        ``jrm:`` meta record or individual entries may be gone, leaving
        orphans that :meth:`drop` would miss.  Metadata recovery resets
        the journal before replaying chunks — the replay re-journals its
        re-ingests, so clients at pre-failure versions still converge
        (or fall back to a full reload).  Returns keys removed.
        """
        stale = [k for k, _ in self.kv.local_pscan(journal_prefix(dataset))]
        for key in stale:
            self.kv.local_delete(key)
        removed = len(stale)
        if self.kv.local_get_or_none(journal_meta_key(dataset)) is not None:
            self.kv.local_delete(journal_meta_key(dataset))
            removed += 1
        return removed

    # ------------------------------------------------------------- reading
    def depth(self, dataset: str) -> int:
        """Number of retained entries (the dlcmd/occupancy probe)."""
        meta = self._meta(dataset)
        return meta[2] if meta is not None else 0

    def span(self, dataset: str) -> Optional[Tuple[int, int]]:
        """(oldest, newest) retained versions, or None when empty."""
        meta = self._meta(dataset)
        return (meta[0], meta[1]) if meta is not None else None

    def entries_since(
        self, dataset: str, from_ts: int
    ) -> Optional[list[JournalEntry]]:
        """Entries covering versions ``(from_ts, newest]``, oldest first.

        Returns ``None`` when the journal cannot serve the delta — the
        horizon has compacted past ``from_ts`` (or the dataset was never
        journaled) — in which case the caller must fall back to a full
        snapshot reload.  Versions are contiguous, so the fetch is one
        point get per entry: O(delta), never a scan.
        """
        meta = self._meta(dataset)
        if meta is None:
            return None
        oldest, newest, _ = meta
        if from_ts >= newest:
            return []
        if from_ts + 1 < oldest:
            return None  # horizon passed: the gap is unrecoverable
        entries = []
        for ts in range(from_ts + 1, newest + 1):
            blob = self.kv.local_get_or_none(journal_key(dataset, ts))
            if blob is None:
                return None  # hole (concurrent compaction): full reload
            entries.append(JournalEntry.decode(blob))
        return entries
