"""FUSE-style POSIX facade over libDIESEL (paper §5, Fig 10c/11a/12).

Training frameworks read datasets through standard POSIX calls; DIESEL
mounts itself via FUSE so no training code changes (§1, §6.6).  FUSE
redirection costs kernel↔userspace crossings: the kernel splits reads
into ``max_read``-sized requests, each crossing into the daemon
(Vangoor et al., FAST'17).  The paper mitigates this with a
multi-threaded FUSE loop and multiple DIESEL clients per mount (§5) —
modelled here as a pool of underlying clients served round-robin —
but FUSE still lands at ~60-85 % of the native API's throughput
(Fig 11a/12), which this facade's overhead model reproduces.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional, Sequence

from repro.calibration import Calibration, DEFAULT
from repro.core.client import DieselClient
from repro.errors import DieselError
from repro.sim.engine import Event


class FuseStats:
    __slots__ = ("reads", "crossings", "getattrs", "readdirs")

    def __init__(self) -> None:
        self.reads = 0
        self.crossings = 0
        self.getattrs = 0
        self.readdirs = 0


class FuseFile:
    """An open file handle with POSIX read/seek semantics.

    Each ``read`` costs one kernel crossing per ``max_read``-sized
    request plus the client's range read; sequential reads advance the
    file position like read(2).
    """

    def __init__(self, mount: "FuseMount", path: str, size: int) -> None:
        self._mount = mount
        self.path = path
        self.size = size
        self.pos = 0
        self._closed = False

    def _check(self) -> None:
        if self._closed:
            raise DieselError(f"file handle for {self.path!r} is closed")

    def seek(self, offset: int, whence: int = 0) -> int:
        """lseek: 0=SET, 1=CUR, 2=END.  Returns the new position."""
        self._check()
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self.pos + offset
        elif whence == 2:
            new = self.size + offset
        else:
            raise DieselError(f"bad whence: {whence}")
        if new < 0:
            raise DieselError("negative seek position")
        self.pos = new
        return new

    def read(self, size: int = -1) -> Generator[Event, Any, bytes]:
        """Read up to ``size`` bytes from the current position."""
        self._check()
        if size < 0:
            size = max(0, self.size - self.pos)
        client = self._mount._client()
        crossings = self._mount._crossings_for(max(1, size))
        yield self._mount.env.timeout(
            crossings * self._mount.cal.fuse.crossing_s
        )
        self._mount.stats.crossings += crossings
        data = yield from client.get_range(self.path, self.pos, size)
        self.pos += len(data)
        self._mount.stats.reads += 1
        return data

    def pread(self, size: int, offset: int) -> Generator[Event, Any, bytes]:
        """Positional read; does not move the file offset."""
        self._check()
        saved = self.pos
        self.pos = offset
        try:
            data = yield from self.read(size)
        finally:
            self.pos = saved
        return data

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class FuseMount:
    """A mounted DIESEL dataset exposing POSIX-ish operations."""

    def __init__(
        self,
        clients: Sequence[DieselClient],
        calibration: Calibration = DEFAULT,
    ) -> None:
        if not clients:
            raise DieselError("a FUSE mount needs at least one DIESEL client")
        datasets = {c.dataset for c in clients}
        if len(datasets) != 1:
            raise DieselError("all clients of one mount must share a dataset")
        self.clients = list(clients)
        self.cal = calibration
        self.stats = FuseStats()
        self._rr = 0
        self._mounted = True

    @property
    def env(self):
        return self.clients[0].env

    @property
    def mounted(self) -> bool:
        return self._mounted

    def unmount(self) -> None:
        """§5's FUSE management API: tear the mount down.

        Closes every underlying DIESEL client; subsequent operations
        raise :class:`DieselError`.  Idempotent.
        """
        if not self._mounted:
            return
        self._mounted = False
        for c in self.clients:
            c.close()

    def _client(self) -> DieselClient:
        """Round-robin over the mount's client pool (§5 multi-client FUSE)."""
        if not self._mounted:
            raise DieselError("mount has been unmounted")
        c = self.clients[self._rr % len(self.clients)]
        self._rr += 1
        return c

    def _crossings_for(self, nbytes: int) -> int:
        """Kernel request count for a read of ``nbytes``."""
        return max(1, math.ceil(nbytes / self.cal.fuse.max_read_bytes))

    def open(self, path: str) -> Generator[Event, Any, FuseFile]:
        """open(2): lookup + open crossings; returns a positional handle."""
        client = self._client()
        yield self.env.timeout(2 * self.cal.fuse.crossing_s)
        self.stats.crossings += 2
        info = yield from client.stat(path)
        if info["is_dir"]:
            raise DieselError(f"cannot open a directory: {path!r}")
        return FuseFile(self, path, info["size"])

    def read_file(self, path: str) -> Generator[Event, Any, bytes]:
        """open() + read()-to-EOF + close() through the FUSE layer."""
        client = self._client()
        # open(): lookup + open crossings.
        yield self.env.timeout(2 * self.cal.fuse.crossing_s)
        payload = yield from client.get(path)
        crossings = self._crossings_for(len(payload))
        yield self.env.timeout(
            crossings * self.cal.fuse.crossing_s + self.cal.diesel.fuse_overhead_s
        )
        self.stats.reads += 1
        self.stats.crossings += crossings + 2
        return payload

    def read_files(
        self, paths: Sequence[str]
    ) -> Generator[Event, Any, "dict[str, bytes]"]:
        """Batched open+read+close: one ``get_many()`` for a mini-batch.

        The kernel crossings still scale with the bytes moved (FUSE
        splits every read into ``max_read`` requests), but the per-file
        RPC chain collapses into one batched client call — the §4
        request executor then merges the server-side reads chunk-wise.
        """
        client = self._client()
        paths = list(paths)
        # open(): lookup + open crossings per file.
        yield self.env.timeout(2 * len(paths) * self.cal.fuse.crossing_s)
        payloads = yield from client.get_many(paths)
        crossings = sum(
            self._crossings_for(len(data)) for data in payloads.values()
        )
        yield self.env.timeout(
            crossings * self.cal.fuse.crossing_s
            + len(paths) * self.cal.diesel.fuse_overhead_s
        )
        self.stats.reads += len(paths)
        self.stats.crossings += crossings + 2 * len(paths)
        return payloads

    def getattr(self, path: str) -> Generator[Event, Any, dict]:
        """stat() through FUSE: one crossing + the client's O(1) lookup."""
        client = self._client()
        yield self.env.timeout(self.cal.fuse.crossing_s)
        info = yield from client.stat(path)
        self.stats.getattrs += 1
        self.stats.crossings += 1
        return info

    def readdir(self, path: str) -> Generator[Event, Any, list[str]]:
        client = self._client()
        yield self.env.timeout(self.cal.fuse.crossing_s)
        entries = yield from client.ls(path)
        self.stats.readdirs += 1
        self.stats.crossings += 1
        return entries

    def ls_recursive(
        self, root: str = "/", with_sizes: bool = False
    ) -> Generator[Event, Any, int]:
        """``ls -R`` / ``ls -lR`` against the mount (Fig 10c).

        With a snapshot loaded, every getattr is a local hashmap hit, so
        ``ls -lR`` costs barely more than ``ls -R`` — unlike Lustre, whose
        stat must visit the OSS for sizes.
        """
        index = self._client().index  # requires a loaded snapshot
        count = 0
        for directory in index.walk(root):
            entries = yield from self.readdir(directory)
            for entry in entries:
                count += 1
                if with_sizes:
                    yield from self.getattr(entry)
        return count

    def exists(self, path: str) -> Generator[Event, Any, bool]:
        try:
            yield from self.getattr(path)
            return True
        except Exception:
            return False


def mount(
    clients: Sequence[DieselClient], calibration: Optional[Calibration] = None
) -> FuseMount:
    """Create a FUSE mount over a pool of DIESEL clients."""
    return FuseMount(clients, calibration or DEFAULT)
