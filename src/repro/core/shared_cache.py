"""Node-level shared chunk tier: one cache crossing task boundaries.

DIESEL's task-grained cache (§4.2) is private to one training job, so a
hyperparameter sweep of N tasks over the same dataset pays N× backend
fetches and N× memory.  This module adds the Hoard-style remedy: every
node runs **one** :class:`SharedChunkCache`, and each task's
:class:`~repro.core.dist_cache.CacheMaster` on that node admits chunks
*through* it instead of into private memory:

* chunks are **reference-counted** per task — the first task's cold
  admission fetches from the object store, every later task's admission
  of the same chunk is a warm ref-bump (no fetch, no extra memory);
* **single-flight is cross-task**: two tasks racing the same cold chunk
  coalesce onto one backend fetch, exactly like the per-master map they
  replace;
* a task deregistering drops its refs; refcount-0 chunks stay resident
  as a **warm pool** (a later task re-warms from them) until eviction
  reclaims them for space — eviction never touches a referenced chunk;
* **per-tenant byte quotas** bound how many resident bytes one tenant
  may pin per node (0 = unlimited; admission at exactly the quota is
  allowed, one byte past it is rejected);
* two **QoS classes**: an ``interactive`` admission may evict any
  refcount-0 chunk to make room, a ``batch`` admission may only reclaim
  refcount-0 chunks last pinned by batch tasks — it cannot steal the
  warm pool an interactive task left behind;
* chunk *residency* is delegated to a pluggable
  :mod:`~repro.core.chunk_store` backend: the default ``ram`` store
  keeps the legacy all-in-memory behaviour, while ``tiered`` adds a
  simulated node-local NVMe tier — under memory pressure, refcount-0
  chunks are **demoted** to disk (LRU-first) instead of dropped,
  disk-resident chunks are promoted back on access, and the disk tier
  *survives a node crash* so recovery re-admits by reference instead
  of re-fetching from the backend.

:class:`SharedCacheRegistry` is the deployment-wide handle: it lazily
creates the per-node caches (each with its own store built from the
registry's spec), owns the tenant quota table, hands out task keys,
and aggregates stats for benchmarks and ``dlcmd tenants`` / ``dlcmd
tiers``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.chunk import Chunk
from repro.core.chunk_store import (
    ChunkStoreStats,
    DEFAULT_DISK_BANDWIDTH_BPS,
    DEFAULT_DISK_LATENCY_S,
    make_spec,
    make_store,
)
from repro.sim.engine import Environment, Event

#: The two admission-priority classes (paper-less extension; see
#: DESIGN §11).  ``interactive`` outranks ``batch`` at eviction time.
QOS_CLASSES = ("interactive", "batch")


@dataclass(slots=True)
class SharedCacheStats:
    """Shared-tier counters (the bench-reporting seam).

    Cumulative counters move as the cache runs; the gauge fields
    (``bytes_resident`` / ``chunks_resident`` / ``refs``) are refreshed
    on every :attr:`SharedChunkCache.stats` access.
    """

    #: Admissions that fetched the chunk from the object store.
    cold_admissions: int = 0
    #: Admissions satisfied by ref-bumping an already-resident chunk
    #: (another task — or a prior task — paid the fetch).
    warm_admissions: int = 0
    #: Admissions that joined another task's in-flight backend fetch
    #: (the cross-task single-flight map).
    coalesced_pulls: int = 0
    #: File reads served from a resident chunk held only by *other*
    #: tasks (the shared-tier read hit in the Fig 4 chain).
    cross_task_reads: int = 0
    #: Refcount-0 chunks reclaimed to make room for a new admission.
    evictions: int = 0
    #: Admissions refused because they would push the tenant past its
    #: byte quota on this node.
    quota_rejections: int = 0
    #: Batch admissions refused because the only reclaimable chunks
    #: were the interactive warm pool (QoS protection).
    qos_denied: int = 0
    #: Admissions refused because the node's memory could not cover the
    #: chunk even after every evictable chunk was reclaimed.
    skipped_no_memory: int = 0
    #: Task refs dropped (deregistration / recovery re-homing).
    released_refs: int = 0
    #: Gauges (refreshed on stats access).
    bytes_resident: int = 0
    chunks_resident: int = 0
    refs: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class _Entry:
    """One resident chunk's cross-task reference bookkeeping.

    The payload itself lives in the node cache's chunk *store* (RAM or
    tiered, see :mod:`repro.core.chunk_store`) under the same key; this
    entry only tracks who references it."""

    nbytes: int
    #: Task keys currently holding a reference.
    tasks: set = field(default_factory=set)
    #: Tenant → number of that tenant's tasks referencing this chunk
    #: (quota is charged on the tenant's first ref, released on its
    #: last).
    tenants: Dict[str, int] = field(default_factory=dict)
    #: QoS class protecting this chunk at eviction time: the highest
    #: class that ever pinned it ("interactive" wins and sticks, so a
    #: batch task cannot reclaim an interactive task's warm pool).
    qos: str = "batch"


class SharedChunkCache:
    """The shared chunk tier on one node (all tasks, all datasets)."""

    def __init__(self, env: Environment, node, registry: "SharedCacheRegistry") -> None:
        self.env = env
        self.node = node
        self.registry = registry
        #: ``"<dataset>/<encoded cid>"`` → reference entry.  Residency
        #: (payload, tier, LRU recency) is owned by :attr:`store`.
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: Chunk residency backend (RAM or RAM+disk), built from the
        #: registry's store spec; its ``on_evict`` hook drops our
        #: reference entry when the store sheds a chunk for capacity.
        self.store = make_store(env, node, registry.store_spec,
                                on_evict=self._forget)
        #: Cross-task single-flight map: key → completion event of the
        #: backend fetch currently streaming that chunk.
        self._inflight: Dict[str, Event] = {}
        #: Tenant → resident bytes the tenant references on this node.
        self._tenant_usage: Dict[str, int] = {}
        self._stats = SharedCacheStats()
        self._recorder = None

    @property
    def recorder(self):
        """Attached observability recorder (propagated by the registry)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self.store.recorder = value

    @staticmethod
    def _key(dataset: str, encoded_cid: str) -> str:
        return f"{dataset}/{encoded_cid}"

    # ------------------------------------------------------------- inspection
    @property
    def stats(self) -> SharedCacheStats:
        """Counters with the residency gauges refreshed."""
        s = self._stats
        s.chunks_resident = len(self._entries)
        s.bytes_resident = sum(e.nbytes for e in self._entries.values())
        s.refs = sum(len(e.tasks) for e in self._entries.values())
        return s

    def resident(self, dataset: str, encoded_cid: str) -> bool:
        return self._key(dataset, encoded_cid) in self._entries

    def refcount(self, dataset: str, encoded_cid: str) -> int:
        entry = self._entries.get(self._key(dataset, encoded_cid))
        return len(entry.tasks) if entry is not None else 0

    def tenant_usage(self, tenant: str) -> int:
        """Resident bytes ``tenant`` currently references on this node."""
        return self._tenant_usage.get(tenant, 0)

    def peek(self, dataset: str, encoded_cid: str) -> Optional[Chunk]:
        """RAM-resident chunk for a read, whoever admitted it (no ref
        taken, no cost charged).

        The shared-tier read hit: a task whose own master does not hold
        the chunk can still serve the file from another task's resident
        copy.  Touches LRU order; the caller counts the hit via
        :meth:`note_cross_task_read`.  Disk-resident chunks are *not*
        returned here — a free peek must not hide a disk read; use
        :meth:`read_resident` for those.
        """
        got = self.store.get(self._key(dataset, encoded_cid))
        return got[0] if got is not None else None

    def disk_resident(self, dataset: str, encoded_cid: str) -> bool:
        """Whether the chunk is resident on the disk tier only."""
        return self.store.tier_of(self._key(dataset, encoded_cid)) == "disk"

    def read_resident(
        self, dataset: str, encoded_cid: str
    ) -> Generator[Event, Any, Optional[Chunk]]:
        """Cost-charging read of a resident chunk on *any* tier.

        Disk-resident chunks pay the device read (+ decompress) and are
        promoted back to RAM when node memory allows — the tier hit that
        makes datasets larger than memory serveable without a backend
        round-trip.
        """
        got = yield from self.store.load(self._key(dataset, encoded_cid))
        return got[0] if got is not None else None

    def note_cross_task_read(self) -> None:
        self._stats.cross_task_reads += 1

    # -------------------------------------------------------------- admission
    def _quota_room(self, tenant: str, nbytes: int) -> bool:
        quota = self.registry.quota_of(tenant)
        if quota <= 0:
            return True
        return self._tenant_usage.get(tenant, 0) + nbytes <= quota

    def _charge_ref(self, entry: _Entry, task: str, tenant: str, qos: str) -> bool:
        """Add ``task``'s reference; False iff the tenant quota refuses."""
        if task in entry.tasks:
            return True
        first_for_tenant = tenant not in entry.tenants
        if first_for_tenant and not self._quota_room(tenant, entry.nbytes):
            self._stats.quota_rejections += 1
            return False
        entry.tasks.add(task)
        entry.tenants[tenant] = entry.tenants.get(tenant, 0) + 1
        if first_for_tenant:
            self._tenant_usage[tenant] = (
                self._tenant_usage.get(tenant, 0) + entry.nbytes
            )
        if qos == "interactive":
            entry.qos = "interactive"
        return True

    def _forget(self, key: str) -> None:
        """Drop the reference entry for a chunk the store no longer
        holds in RAM-or-disk (eviction); victims are refcount-0, so no
        tenant usage needs releasing."""
        if self._entries.pop(key, None) is None:
            return
        self._stats.evictions += 1
        rec = self.recorder
        if rec is not None:
            rec.count("shared_evict", "shared_tier")

    def _evictable_for(self, qos: str):
        """Predicate gating which chunks an admission may push out:
        referenced chunks never, and ``batch`` may not reclaim the
        interactive warm pool."""
        def ok(key: str) -> bool:
            entry = self._entries.get(key)
            if entry is None:
                return True
            if entry.tasks:
                return False
            return qos == "interactive" or entry.qos != "interactive"
        return ok

    def _pick_victims(self, needed: int, qos: str):
        """Refcount-0 RAM chunks to displace, LRU-first, honouring QoS:
        ``batch`` may not touch chunks the interactive class left warm.
        Returns ``(victims, freed_bytes, blocked_by_qos)``."""
        victims: List[str] = []
        blocked_by_qos = False
        freed = 0
        for key in self.store.ram_lru():
            entry = self._entries.get(key)
            if entry is None or entry.tasks:
                continue
            if qos != "interactive" and entry.qos == "interactive":
                blocked_by_qos = True
                continue
            victims.append(key)
            freed += entry.nbytes
            if freed >= needed:
                break
        return victims, freed, blocked_by_qos

    def _place(
        self, key: str, chunk: Chunk, nbytes: int, qos: str
    ) -> Generator[Event, Any, Optional[str]]:
        """Find a home for a cold admission; returns its tier or ``None``.

        Memory pressure displaces refcount-0 RAM chunks LRU-first
        (QoS-governed): the RAM store evicts them outright, the tiered
        store *demotes* them to disk and overflows the admission itself
        to disk when RAM still cannot cover it.  A refusal moves the
        ``qos_denied`` / ``skipped_no_memory`` counter, exactly like
        the eviction scan it replaces.
        """
        room = self.node.memory.level
        blocked = False
        if room < nbytes:
            victims, freed, blocked = self._pick_victims(nbytes - room, qos)
            if freed >= nbytes - room:
                allowed = self._evictable_for(qos)
                for vkey in victims:
                    outcome = yield from self.store.displace(vkey, allowed)
                    if outcome == "evicted":
                        self._forget(vkey)
        tier = yield from self.store.put(
            key, chunk, nbytes, self._evictable_for(qos)
        )
        if tier is None:
            if blocked:
                self._stats.qos_denied += 1
            else:
                self._stats.skipped_no_memory += 1
        return tier

    def acquire(
        self, master, encoded_cid: str
    ) -> Generator[Event, Any, Optional[Tuple[Chunk, int]]]:
        """Admit one chunk on behalf of ``master``'s task (ref-counted).

        ``master`` is a :class:`~repro.core.dist_cache.CacheMaster`
        attached via ``attach_shared`` (the call site supplies node,
        server, dataset, task key, tenant and QoS class; its
        ``stats.coalesced_pulls`` moves when this acquire joins another
        task's in-flight fetch, preserving the task-level counter).

        Resident → warm ref-bump.  In flight → wait (cross-task
        single-flight), then ref-bump.  Miss → fetch from the object
        store, make room (QoS-governed eviction of the warm pool),
        charge the tenant quota, admit.  Returns ``(chunk, nbytes)``,
        or ``None`` when the quota, QoS policy or node memory refused
        the admission (the chunk stays server-resident; reads for it
        fall through, Fig 4).
        """
        key = self._key(master.dataset, encoded_cid)
        task = master._shared_task
        tenant = master._shared_tenant
        qos = master._shared_qos
        while True:
            entry = self._entries.get(key)
            if entry is not None:
                if not self._charge_ref(entry, task, tenant, qos):
                    return None
                self.store.touch(key)
                self._stats.warm_admissions += 1
                rec = self.recorder
                if rec is not None:
                    rec.count("shared_warm_admit", "shared_tier")
                return self.store.chunk_object(key), entry.nbytes
            pending = self._inflight.get(key)
            if pending is None:
                break
            self._stats.coalesced_pulls += 1
            master.stats.coalesced_pulls += 1
            yield pending
            # Re-check: the fetch may have been refused (quota/memory),
            # in which case this task retries the cold path itself.
        done = self.env.event()
        self._inflight[key] = done
        try:
            blob = yield from master.server.call(
                self.node,
                "get_chunk",
                master.dataset,
                encoded_cid,
                response_bytes=None,  # sized from the returned bytes
            )
            nbytes = len(blob)
            if not self._quota_room(tenant, nbytes):
                self._stats.quota_rejections += 1
                return None
            chunk = Chunk.decode(blob)
            tier = yield from self._place(key, chunk, nbytes, qos)
            if tier is None:
                return None
            entry = _Entry(nbytes=nbytes, qos=qos)
            entry.tasks.add(task)
            entry.tenants[tenant] = 1
            self._entries[key] = entry
            self._tenant_usage[tenant] = (
                self._tenant_usage.get(tenant, 0) + nbytes
            )
            self._stats.cold_admissions += 1
            rec = self.recorder
            if rec is not None:
                rec.count("shared_cold_admit", "shared_tier")
            return chunk, nbytes
        finally:
            del self._inflight[key]
            done.succeed()

    def acquire_batch(
        self, master, cids: Sequence[str]
    ) -> Generator[Event, Any, Dict[str, Tuple[Chunk, int]]]:
        """Batched :meth:`acquire`: one vectorized server admission.

        The cold subset rides a single
        :meth:`~repro.core.server.DieselServer.call_batch`; warm chunks
        ref-bump immediately and chunks in flight under another task are
        awaited afterwards — the same classification discipline as the
        per-master ``_pull_chunks_batched`` it replaces.  Returns the
        chunks now held by ``master``'s task, keyed by encoded cid.
        """
        task = master._shared_task
        tenant = master._shared_tenant
        qos = master._shared_qos
        held: Dict[str, Tuple[Chunk, int]] = {}
        fetch: List[str] = []
        dones: List[Event] = []
        waits: List[str] = []
        for cid in cids:
            key = self._key(master.dataset, cid)
            entry = self._entries.get(key)
            if entry is not None:
                if self._charge_ref(entry, task, tenant, qos):
                    self.store.touch(key)
                    self._stats.warm_admissions += 1
                    held[cid] = (self.store.chunk_object(key), entry.nbytes)
                continue
            if key in self._inflight:
                self._stats.coalesced_pulls += 1
                master.stats.coalesced_pulls += 1
                waits.append(cid)
                continue
            done = self.env.event()
            self._inflight[key] = done
            fetch.append(cid)
            dones.append(done)
        try:
            if fetch:
                blobs = yield from master.server.call_batch(
                    self.node,
                    [("get_chunk", master.dataset, cid) for cid in fetch],
                )
                for cid, blob in zip(fetch, blobs):
                    nbytes = len(blob)
                    if not self._quota_room(tenant, nbytes):
                        self._stats.quota_rejections += 1
                        continue
                    chunk = Chunk.decode(blob)
                    key = self._key(master.dataset, cid)
                    tier = yield from self._place(key, chunk, nbytes, qos)
                    if tier is None:
                        continue
                    entry = _Entry(nbytes=nbytes, qos=qos)
                    entry.tasks.add(task)
                    entry.tenants[tenant] = 1
                    self._entries[key] = entry
                    self._tenant_usage[tenant] = (
                        self._tenant_usage.get(tenant, 0) + nbytes
                    )
                    self._stats.cold_admissions += 1
                    held[cid] = (chunk, nbytes)
        finally:
            for cid, done in zip(fetch, dones):
                del self._inflight[self._key(master.dataset, cid)]
                done.succeed()
        for cid in waits:
            result = yield from self.acquire(master, cid)
            if result is not None:
                held[cid] = result
                # acquire already counted the warm admission.
        return held

    # ---------------------------------------------------------------- release
    def release(self, dataset: str, encoded_cid: str, task: str, tenant: str) -> None:
        """Drop one task's reference; the chunk stays warm (refcount-0
        chunks are reclaimed by eviction, not by release)."""
        entry = self._entries.get(self._key(dataset, encoded_cid))
        if entry is None or task not in entry.tasks:
            return
        entry.tasks.discard(task)
        left = entry.tenants.get(tenant, 0) - 1
        if left <= 0:
            entry.tenants.pop(tenant, None)
            self._tenant_usage[tenant] = max(
                0, self._tenant_usage.get(tenant, 0) - entry.nbytes
            )
        else:
            entry.tenants[tenant] = left
        self._stats.released_refs += 1

    def release_task(self, task: str, tenant: str) -> int:
        """Drop every reference ``task`` holds; returns how many."""
        released = 0
        for key, entry in self._entries.items():
            if task in entry.tasks:
                dataset, _, encoded_cid = key.rpartition("/")
                self.release(dataset, encoded_cid, task, tenant)
                released += 1
        return released

    def purge_crashed(self) -> int:
        """Node died: forget RAM residency without returning memory (the
        node's memory container died with it).  The *disk tier
        survives* the crash: disk-resident entries are kept with their
        refcounts cleared, so post-restore re-admissions warm from disk
        instead of re-fetching from the backend.  Returns entries
        dropped (RAM-only residents)."""
        if self.node.alive:
            return 0
        before = len(self._entries)
        self.store.crash()
        kept: "OrderedDict[str, _Entry]" = OrderedDict()
        for key, entry in self._entries.items():
            if self.store.tier_of(key) == "disk":
                entry.tasks.clear()
                entry.tenants.clear()
                kept[key] = entry
        self._entries = kept
        self._inflight.clear()
        self._tenant_usage.clear()
        return before - len(kept)


class SharedCacheRegistry:
    """Deployment-wide shared-tier handle: per-node caches + quotas.

    The store keyword arguments mirror the ``DieselConfig`` fields
    ``cache_store`` / ``disk_tier_bytes`` / ``disk_latency_s`` /
    ``disk_bandwidth_bps`` / ``chunk_compression``; every lazily
    created node cache builds its residency store from this one spec.
    """

    def __init__(
        self,
        env: Environment,
        *,
        store: str = "ram",
        disk_tier_bytes: int = 0,
        disk_latency_s: float = DEFAULT_DISK_LATENCY_S,
        disk_bandwidth_bps: float = DEFAULT_DISK_BANDWIDTH_BPS,
        chunk_compression: bool = False,
        compression_seed: int = 0,
    ) -> None:
        self.env = env
        self.store_spec = make_spec(
            store, disk_tier_bytes, disk_latency_s,
            disk_bandwidth_bps, chunk_compression, compression_seed,
        )
        self._caches: Dict[str, SharedChunkCache] = {}  # node name → cache
        self._quotas: Dict[str, int] = {}  # tenant → per-node byte quota
        self._next_task = 0
        self._recorder = None

    def for_node(self, node) -> SharedChunkCache:
        """The node's shared cache (created lazily on first use)."""
        cache = self._caches.get(node.name)
        if cache is None:
            cache = SharedChunkCache(self.env, node, self)
            cache.recorder = self._recorder
            self._caches[node.name] = cache
        return cache

    @property
    def node_caches(self) -> List[SharedChunkCache]:
        return [self._caches[k] for k in sorted(self._caches)]

    def next_task_id(self) -> str:
        """A deterministic unique key for a registering task."""
        self._next_task += 1
        return f"task{self._next_task}"

    # ----------------------------------------------------------------- quotas
    def set_quota(self, tenant: str, quota_bytes: int) -> None:
        """Per-node resident-byte quota for ``tenant`` (0 = unlimited)."""
        if quota_bytes < 0:
            raise ValueError("tenant quota must be >= 0")
        self._quotas[tenant] = quota_bytes

    def quota_of(self, tenant: str) -> int:
        return self._quotas.get(tenant, 0)

    def tenants(self) -> List[str]:
        """Every tenant with a quota or resident usage, sorted."""
        names = set(self._quotas)
        for cache in self._caches.values():
            names.update(cache._tenant_usage)
        return sorted(names)

    def tenant_rows(self) -> List[dict]:
        """Per-tenant usage summary (``dlcmd tenants`` / bench rows).

        ``max_node_usage_bytes`` is the enforcement-relevant number:
        quotas bound each node independently, so the busiest node is the
        one that can violate them.
        """
        rows = []
        for tenant in self.tenants():
            usages = [c.tenant_usage(tenant) for c in self.node_caches]
            quota = self.quota_of(tenant)
            peak = max(usages, default=0)
            rows.append({
                "tenant": tenant,
                "quota_bytes": quota,
                "max_node_usage_bytes": peak,
                "total_usage_bytes": sum(usages),
                "within_quota": quota <= 0 or peak <= quota,
            })
        return rows

    # ------------------------------------------------------------------ stats
    @property
    def stats(self) -> SharedCacheStats:
        """Counters summed over every node cache (gauges included)."""
        total = SharedCacheStats()
        for cache in self._caches.values():
            snap = cache.stats
            for f in fields(total):
                setattr(total, f.name, getattr(total, f.name) + getattr(snap, f.name))
        return total

    @property
    def store_stats(self) -> ChunkStoreStats:
        """Tier counters summed over every node cache's chunk store."""
        total = ChunkStoreStats()
        for cache in self._caches.values():
            snap = cache.store.stats
            for f in fields(total):
                setattr(total, f.name, getattr(total, f.name) + getattr(snap, f.name))
        return total

    def tier_rows(self) -> List[dict]:
        """Per-node tier residency summary (``dlcmd tiers`` / bench rows)."""
        rows = []
        for cache in self.node_caches:
            s = cache.store.stats
            rows.append({
                "node": cache.node.name,
                "store": cache.store.kind,
                "chunks_ram": s.chunks_ram,
                "chunks_disk": s.chunks_disk,
                "ram_bytes": s.ram_bytes,
                "disk_bytes": s.disk_bytes,
                "disk_stored_bytes": s.disk_stored_bytes,
                "ram_hits": s.ram_hits,
                "disk_hits": s.disk_hits,
                "promotions": s.promotions,
                "demotions": s.demotions,
            })
        return rows

    @property
    def recorder(self):
        """Attached observability recorder (None = disabled)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        for cache in self._caches.values():
            cache.recorder = value

    # --------------------------------------------------------------- recovery
    def purge_dead(self) -> int:
        """Clear the caches of crashed nodes; returns entries dropped.

        Idempotent — every recovering task calls it; only the first call
        after a crash finds anything.  Survivor caches are untouched, so
        recovery re-admissions warm from them instead of re-fetching.
        """
        return sum(c.purge_crashed() for c in self._caches.values())
