"""Shuffle strategies (paper §4.3, Fig 8).

``full_shuffle`` is the conventional shuffle-over-dataset: a uniform
permutation of all file names.  It is statistically ideal but turns every
epoch into random small reads.

``chunkwise_shuffle`` is the paper's method, in three steps:

1. shuffle the dataset's chunk IDs;
2. split the shuffled chunk list into groups of ``group_size`` chunks;
3. within each group, pool the groups' files and shuffle *them*.

The concatenated per-group file lists form the epoch order.  Reading in
this order touches chunks group by group, so a client only ever needs
``group_size × chunk_size`` bytes of cache (~2 GB for ImageNet-1K in the
paper vs the 150 GB dataset), while file order remains random within a
window large enough not to hurt SGD convergence (Fig 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.util.ids import ChunkId


def full_shuffle(paths: Sequence[str], rng: random.Random) -> list[str]:
    """Uniform permutation of all paths (the baseline *shuffle dataset*)."""
    order = list(paths)
    rng.shuffle(order)
    return order


@dataclass(frozen=True)
class ShuffleGroup:
    """One group of the epoch plan: its chunks and its shuffled files."""

    chunk_ids: tuple[ChunkId, ...]
    files: tuple[str, ...]

    def working_set_bytes(self, chunk_sizes: Mapping[ChunkId, int]) -> int:
        return sum(chunk_sizes[c] for c in self.chunk_ids)


@dataclass(frozen=True)
class EpochPlan:
    """A full epoch order with its group structure.

    ``files`` is the flat read order handed to the training framework;
    ``groups`` drives the client's chunk prefetch/evict schedule.
    """

    groups: tuple[ShuffleGroup, ...]

    @property
    def files(self) -> list[str]:
        out: list[str] = []
        for g in self.groups:
            out.extend(g.files)
        return out

    @property
    def file_count(self) -> int:
        return sum(len(g.files) for g in self.groups)

    def group_of(self, index: int) -> int:
        """Group index containing the ``index``-th file of the epoch."""
        if index < 0:
            raise IndexError(index)
        for gi, g in enumerate(self.groups):
            if index < len(g.files):
                return gi
            index -= len(g.files)
        raise IndexError("file index beyond epoch length")

    def peak_working_set_bytes(self, chunk_sizes: Mapping[ChunkId, int]) -> int:
        """Max bytes of chunk cache needed at any point in the epoch."""
        if not self.groups:
            return 0
        return max(g.working_set_bytes(chunk_sizes) for g in self.groups)


def chunkwise_shuffle(
    files_by_chunk: Mapping[ChunkId, Sequence[str]],
    group_size: int,
    rng: random.Random,
) -> EpochPlan:
    """Generate one epoch's chunk-wise shuffled order (Fig 8).

    ``files_by_chunk`` maps each chunk to its *live* file paths (deleted
    files excluded by the caller).  Chunks with no live files are skipped.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    chunk_ids = [cid for cid, files in files_by_chunk.items() if files]
    chunk_ids.sort()  # deterministic base order before shuffling
    rng.shuffle(chunk_ids)  # step 1: shuffle chunk IDs
    groups: list[ShuffleGroup] = []
    for start in range(0, len(chunk_ids), group_size):  # step 2: split
        group_chunks = chunk_ids[start : start + group_size]
        pooled: list[str] = []
        for cid in group_chunks:
            pooled.extend(files_by_chunk[cid])
        rng.shuffle(pooled)  # step 3: shuffle files within the group
        groups.append(ShuffleGroup(tuple(group_chunks), tuple(pooled)))
    return EpochPlan(tuple(groups))


def shuffle_quality(
    order: Sequence[str], files_by_chunk: Mapping[ChunkId, Sequence[str]]
) -> float:
    """Mean normalized displacement of files vs their chunk-sequential order.

    1.0 ≈ fully random placement; 0.0 = untouched sequential order.  Note
    that even ``group_size=1`` scores near 1.0, because shuffling the
    *chunk* order already scatters files globally — use
    :func:`chunk_adjacency` to measure file-level mixing.
    """
    sequential: list[str] = []
    for cid in sorted(files_by_chunk):
        sequential.extend(files_by_chunk[cid])
    pos_seq = {p: i for i, p in enumerate(sequential)}
    n = len(order)
    if n < 2:
        return 0.0
    total = sum(abs(i - pos_seq[p]) for i, p in enumerate(order))
    # Expected |i - j| for two uniform positions is n/3.
    return (total / n) / (n / 3)


def chunk_adjacency(
    order: Sequence[str], files_by_chunk: Mapping[ChunkId, Sequence[str]]
) -> float:
    """Fraction of consecutive files in ``order`` that share a chunk.

    Sequential chunk order scores ≈1; a uniform shuffle of a balanced
    dataset with C chunks scores ≈1/C; chunk-wise shuffle with group size
    g scores ≈1/g — the knob Fig 13 turns when trading locality for
    shuffle randomness.
    """
    chunk_of = {f: cid for cid, files in files_by_chunk.items() for f in files}
    if len(order) < 2:
        return 0.0
    same = sum(
        1
        for a, b in zip(order, order[1:])
        if chunk_of[a] == chunk_of[b]
    )
    return same / (len(order) - 1)
