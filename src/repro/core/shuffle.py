"""Shuffle strategies (paper §4.3, Fig 8).

``full_shuffle`` is the conventional shuffle-over-dataset: a uniform
permutation of all file names.  It is statistically ideal but turns every
epoch into random small reads.

``chunkwise_shuffle`` is the paper's method, in three steps:

1. shuffle the dataset's chunk IDs;
2. split the shuffled chunk list into groups of ``group_size`` chunks;
3. within each group, pool the groups' files and shuffle *them*.

The concatenated per-group file lists form the epoch order.  Reading in
this order touches chunks group by group, so a client only ever needs
``group_size × chunk_size`` bytes of cache (~2 GB for ImageNet-1K in the
paper vs the 150 GB dataset), while file order remains random within a
window large enough not to hurt SGD convergence (Fig 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping, Optional, Sequence

from repro.util.ids import ChunkId


def full_shuffle(paths: Sequence[str], rng: random.Random) -> list[str]:
    """Uniform permutation of all paths (the baseline *shuffle dataset*)."""
    order = list(paths)
    rng.shuffle(order)
    return order


@dataclass(frozen=True)
class ShuffleGroup:
    """One group of the epoch plan: its chunks and its shuffled files.

    ``owner`` names the cache-master node holding every chunk of the
    group when the plan was built owner-bucketed (locality placement);
    ``None`` means the group spans owners (or ownership is unknown) and
    carries no scheduling affinity.
    """

    chunk_ids: tuple[ChunkId, ...]
    files: tuple[str, ...]
    owner: Optional[str] = None

    def working_set_bytes(self, chunk_sizes: Mapping[ChunkId, int]) -> int:
        return sum(chunk_sizes[c] for c in self.chunk_ids)


@dataclass(frozen=True)
class EpochPlan:
    """A full epoch order with its group structure.

    ``files`` is the flat read order handed to the training framework;
    ``groups`` drives the client's chunk prefetch/evict schedule.
    """

    groups: tuple[ShuffleGroup, ...]

    @cached_property
    def files(self) -> list[str]:
        """Flat epoch read order (memoized — built once per plan).

        The dataloader consumes this per batch, so rebuilding the flat
        list on every access was O(files) work in the hot loop.  The
        plan is frozen, so the cached list is computed at most once;
        treat it as read-only.
        """
        out: list[str] = []
        for g in self.groups:
            out.extend(g.files)
        return out

    @property
    def file_count(self) -> int:
        return sum(len(g.files) for g in self.groups)

    def group_of(self, index: int) -> int:
        """Group index containing the ``index``-th file of the epoch."""
        if index < 0:
            raise IndexError(index)
        for gi, g in enumerate(self.groups):
            if index < len(g.files):
                return gi
            index -= len(g.files)
        raise IndexError("file index beyond epoch length")

    def peak_working_set_bytes(self, chunk_sizes: Mapping[ChunkId, int]) -> int:
        """Max bytes of chunk cache needed at any point in the epoch."""
        if not self.groups:
            return 0
        return max(g.working_set_bytes(chunk_sizes) for g in self.groups)

    def repin(
        self, owner_of: Callable[[ChunkId], Optional[str]]
    ) -> "EpochPlan":
        """Same epoch content with refreshed group→owner tags.

        After an elastic membership change, chunk ownership moves but
        the epoch's read order must not: reshuffling mid-epoch would
        re-read some files and skip others.  ``repin`` keeps every
        group's chunks and file order bit-identical and only re-derives
        :attr:`ShuffleGroup.owner` from the current ownership map (the
        majority owner of the group's chunks; first-chunk owner breaks
        ties deterministically), so affinity scheduling and prefetch
        steering follow the chunks to their new masters.
        """
        groups = []
        for g in self.groups:
            owners = [owner_of(c) for c in g.chunk_ids]
            known = [o for o in owners if o is not None]
            if not known:
                owner = None
            else:
                counts: dict[str, int] = {}
                for o in known:
                    counts[o] = counts.get(o, 0) + 1
                best = max(counts.values())
                # First chunk whose owner hit the majority count wins.
                owner = next(o for o in known if counts[o] == best)
            groups.append(
                g if owner == g.owner
                else ShuffleGroup(g.chunk_ids, g.files, owner)
            )
        return EpochPlan(tuple(groups))

    def extended(self, new_groups: Sequence[ShuffleGroup]) -> "EpochPlan":
        """This plan plus ``new_groups`` appended at the tail.

        The online-ingest discipline mirrors :meth:`repin`: the already
        planned portion of the epoch stays bit-identical (committed
        reads must not move), and newly ingested data only ever joins
        at the end of the order.
        """
        if not new_groups:
            return self
        return EpochPlan(self.groups + tuple(new_groups))

    def partition(
        self,
        n_workers: int,
        rng: random.Random,
        affinity: Optional[Mapping[str, int]] = None,
    ) -> list["EpochPlan"]:
        """Split the epoch's groups across ``n_workers`` concurrent readers.

        ``affinity`` maps a group owner (cache-master node name) to a
        worker index: owned groups are pinned to that worker, so under
        locality placement each worker reads the chunks its own node's
        master holds.  Groups without a mapped owner are dealt to the
        least-loaded worker (by file count, deterministic tie-break).
        Every worker's group order is then permuted with ``rng`` — the
        per-epoch randomness that keeps the Fig 13 shuffle contract even
        though the group→worker mapping is ownership-driven.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        affinity = affinity or {}
        shards: list[list[ShuffleGroup]] = [[] for _ in range(n_workers)]
        loads = [0] * n_workers
        for g in self.groups:
            w = affinity.get(g.owner) if g.owner is not None else None
            if w is None or not 0 <= w < n_workers:
                w = min(range(n_workers), key=lambda i: (loads[i], i))
            shards[w].append(g)
            loads[w] += len(g.files)
        for shard in shards:
            rng.shuffle(shard)
        return [EpochPlan(tuple(shard)) for shard in shards]


def chunkwise_shuffle(
    files_by_chunk: Mapping[ChunkId, Sequence[str]],
    group_size: int,
    rng: random.Random,
    owner_of: Optional[Callable[[ChunkId], Optional[str]]] = None,
) -> EpochPlan:
    """Generate one epoch's chunk-wise shuffled order (Fig 8).

    ``files_by_chunk`` maps each chunk to its *live* file paths (deleted
    files excluded by the caller).  Chunks with no live files are skipped.

    ``owner_of`` (locality placement) maps a chunk to the cache-master
    node holding it.  When given, step 1 shuffles chunk IDs *within each
    owner's bucket* so every group's chunks share one owner (recorded as
    :attr:`ShuffleGroup.owner`), and the global group order is shuffled
    afterwards.  File order within groups and group order across the
    epoch stay random — only the group↔owner alignment is constrained,
    which is what lets the affinity scheduler land each group's reads on
    its local master.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    chunk_ids = [cid for cid, files in files_by_chunk.items() if files]
    chunk_ids.sort()  # deterministic base order before shuffling
    if owner_of is None:
        rng.shuffle(chunk_ids)  # step 1: shuffle chunk IDs
        buckets = [(None, chunk_ids)]
    else:
        by_owner: dict[Optional[str], list[ChunkId]] = {}
        for cid in chunk_ids:
            by_owner.setdefault(owner_of(cid), []).append(cid)
        # Deterministic bucket order (None last), shuffled within.
        keys = sorted((k for k in by_owner if k is not None))
        if None in by_owner:
            keys.append(None)
        buckets = []
        for key in keys:
            bucket = by_owner[key]
            rng.shuffle(bucket)  # step 1, per owner
            buckets.append((key, bucket))
    groups: list[ShuffleGroup] = []
    for owner, bucket in buckets:
        for start in range(0, len(bucket), group_size):  # step 2: split
            group_chunks = bucket[start : start + group_size]
            pooled: list[str] = []
            for cid in group_chunks:
                pooled.extend(files_by_chunk[cid])
            rng.shuffle(pooled)  # step 3: shuffle files within the group
            groups.append(
                ShuffleGroup(tuple(group_chunks), tuple(pooled), owner)
            )
    if owner_of is not None:
        rng.shuffle(groups)  # owner buckets must not imply epoch order
    return EpochPlan(tuple(groups))


def tail_extend(
    plan: EpochPlan,
    files_by_chunk: Mapping[ChunkId, Sequence[str]],
    group_size: int,
    rng: random.Random,
    owner_of: Optional[Callable[[ChunkId], Optional[str]]] = None,
) -> EpochPlan:
    """Fold newly ingested chunks into a live epoch, tail-only.

    ``files_by_chunk`` is the dataset's *current* grouping (e.g. from a
    delta-refreshed index).  Chunks already scheduled in ``plan`` are
    left untouched — their position, grouping and file order stay
    bit-identical, so everything a training client has committed to
    reading keeps its order.  Only chunks the plan has never seen are
    chunk-wise shuffled (same three steps as a fresh epoch) and appended
    as new tail groups.  Returns ``plan`` itself when nothing is new.
    """
    seen = {cid for g in plan.groups for cid in g.chunk_ids}
    fresh = {
        cid: files
        for cid, files in files_by_chunk.items()
        if cid not in seen and files
    }
    if not fresh:
        return plan
    tail = chunkwise_shuffle(fresh, group_size, rng, owner_of=owner_of)
    return plan.extended(tail.groups)


def shuffle_quality(
    order: Sequence[str], files_by_chunk: Mapping[ChunkId, Sequence[str]]
) -> float:
    """Mean normalized displacement of files vs their chunk-sequential order.

    1.0 ≈ fully random placement; 0.0 = untouched sequential order.  Note
    that even ``group_size=1`` scores near 1.0, because shuffling the
    *chunk* order already scatters files globally — use
    :func:`chunk_adjacency` to measure file-level mixing.
    """
    sequential: list[str] = []
    for cid in sorted(files_by_chunk):
        sequential.extend(files_by_chunk[cid])
    pos_seq = {p: i for i, p in enumerate(sequential)}
    n = len(order)
    if n < 2:
        return 0.0
    total = sum(abs(i - pos_seq[p]) for i, p in enumerate(order))
    # Expected |i - j| for two uniform positions is n/3.
    return (total / n) / (n / 3)


def chunk_adjacency(
    order: Sequence[str], files_by_chunk: Mapping[ChunkId, Sequence[str]]
) -> float:
    """Fraction of consecutive files in ``order`` that share a chunk.

    Sequential chunk order scores ≈1; a uniform shuffle of a balanced
    dataset with C chunks scores ≈1/C; chunk-wise shuffle with group size
    g scores ≈1/g — the knob Fig 13 turns when trading locality for
    shuffle randomness.
    """
    chunk_of = {f: cid for cid, files in files_by_chunk.items() for f in files}
    if len(order) < 2:
        return 0.0
    same = sum(
        1
        for a, b in zip(order, order[1:])
        if chunk_of[a] == chunk_of[b]
    )
    return same / (len(order) - 1)
