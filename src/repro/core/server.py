"""The DIESEL server (paper Fig 2–4, §4.1, §5).

A DIESEL server is *stateless* with respect to metadata: it translates
filesystem operations into key-value operations against the shared KV
cluster and chunk operations against the shared object store, so any
number of servers can run side by side (Fig 10a scales 1→3→5 servers
against the same KV backend).

Responsibilities implemented here:

* **ingest** — receive a sealed chunk from a client, store it, extract
  its header into KV pairs (file records, chunk record, directory
  entries) and bump the dataset record (write flow, Fig 3);
* **request executor** — sort + merge batched small-file reads into
  chunk-wise range reads (§4 "The request executor in the DIESEL server
  sorts and merges small file requests to chunk-wise operations");
* **serve reads** — file / chunk / range reads through the (optionally
  tiered) object store (read flow, Fig 4);
* **metadata service** — stat/ls/snapshot generation at a calibrated
  aggregate QPS (:class:`repro.calibration.DieselProfile`);
* **housekeeping** — tombstone deletes, `DL_purge` chunk rewriting,
  dataset removal (§4.1.1, §5).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple, Union

from repro.calibration import Calibration, DEFAULT
from repro.core import meta
from repro.core.chunk import Chunk
from repro.core.config import DieselConfig
from repro.core.meta_journal import (
    OP_APPEND,
    OP_CHUNK_ADD,
    OP_CHUNK_DROP,
    OP_DELETE,
    JournalOp,
    MetaJournal,
)
from repro.core.registry import DatasetRegistry
from repro.core.snapshot import MetadataSnapshot, build_snapshot
from repro.errors import (
    DatasetNotFoundError,
    DieselError,
    FileNotFoundInDatasetError,
)
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.kvstore.sharded import ShardedKV
from repro.objectstore.store import ObjectStore
from repro.objectstore.tiered import TieredStore
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event
from repro.util.ids import ChunkId, decode_chunk_id, sim_id_generator
from repro.util.pathutil import basename, dirname, normalize

AnyStore = Union[ObjectStore, TieredStore]

#: Methods that are pure metadata (charged at the metadata service rate).
_META_METHODS = frozenset(
    {
        "stat", "ls", "dataset_ts", "exists", "save_meta", "register",
        "auth", "load_meta_delta", "list_datasets",
    }
)


def object_key(dataset: str, chunk_id: ChunkId) -> str:
    """Object-store key for a chunk: ``<dataset>/<order-preserving id>``.

    The dataset prefix keeps per-dataset listings contiguous; within a
    dataset, lexicographic order equals written order (§4.1.2).
    """
    return f"{dataset}/{chunk_id.encode()}"


def parse_object_key(key: str) -> tuple[str, ChunkId]:
    dataset, _, encoded = key.rpartition("/")
    return dataset, decode_chunk_id(encoded)


@dataclass(slots=True)
class ServerStats:
    """Data-path read counters (chunk transfers, batched reads).

    ``chunk_reads`` counts whole-chunk transfers served to clients; the
    pipelined-prefetch benchmarks assert against it to prove the
    single-flight map eliminates duplicate chunk fetches.
    """

    chunk_reads: int = 0
    file_reads: int = 0
    range_reads: int = 0
    #: get_files/read_files RPCs served.
    batch_reads: int = 0
    #: Files delivered through batched RPCs.
    batch_files: int = 0
    #: Merged chunk-wise range reads issued for batched RPCs.
    batch_spans: int = 0
    ingests: int = 0
    #: Task registrations served (one per TaskCache.register()).
    registrations: int = 0

    def to_dict(self) -> dict:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class DieselServer:
    """One DIESEL server process bound to a cluster node."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        node: Node,
        kv: ShardedKV,
        store: AnyStore,
        config: DieselConfig | None = None,
        calibration: Calibration = DEFAULT,
        name: str = "diesel0",
        workers: int = 32,
        access_keys: Optional[Dict[str, str]] = None,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.node = node
        self.kv = kv
        self.store = store
        self.config = config or DieselConfig()
        self.cal = calibration
        self.name = name
        self.stats = ServerStats()
        #: Registration log: one dict per task registration (dataset,
        #: client, tenant, qos_class, at) — the ``dlcmd tenants`` seam.
        self.registrations: list[dict] = []
        # Delta metadata plane: both live in the shared KV, so every
        # stateless server sees the same journal and registry.
        self.journal = MetaJournal(kv, self.config.meta_journal_horizon)
        self.registry = DatasetRegistry(kv, self.config.registry_shards)
        #: Optional user→key credentials checked by DL_connect; None
        #: means open access (the default in trusted-cluster deployments).
        self.access_keys = access_keys
        # Two worker pools, as in the real server: a metadata path with a
        # calibrated QPS ceiling (Fig 10a) and a data path whose time is
        # dominated by the object store devices.
        self.meta_endpoint = RpcEndpoint.for_capacity(
            env, fabric, node, f"{name}-meta",
            handler=self._handle,
            qps=self.cal.diesel.server_meta_qps,
            latency_s=self.cal.diesel.server_meta_latency_s,
        )
        self.endpoint = RpcEndpoint(
            env,
            fabric,
            node,
            name,
            handler=self._handle,
            service_s=2e-6,  # dispatch; data time is charged by the store
            workers=workers,
        )
        self._recorder = None
        # Logical dataset version counter (monotone per server group; shared
        # through the KV dataset record, so multiple servers stay coherent).
        self._kv_batch = 128  # records per pipelined KV round trip
        # One generator per server so purge-minted chunk IDs never collide.
        self._idgen = sim_id_generator(self.name, clock=lambda: env.now)

    @property
    def recorder(self):
        """Attached observability recorder (None = disabled)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        """Propagate the recorder to both RPC worker pools."""
        self._recorder = value
        self.endpoint.recorder = value
        self.meta_endpoint.recorder = value

    # ------------------------------------------------------------------ RPC
    def _handle(self, method: str, *args: Any) -> Any:
        dispatch = {
            "ingest_chunk": self._op_ingest_chunk,
            "get_file": self._op_get_file,
            "get_file_range": self._op_get_file_range,
            "read_files": self._op_read_files,
            "get_files": self._op_get_files,
            "get_chunk": self._op_get_chunk,
            "get_chunk_range": self._op_get_chunk_range,
            "stat": self._op_stat,
            "ls": self._op_ls,
            "exists": self._op_exists,
            "dataset_ts": self._op_dataset_ts,
            "save_meta": self._op_save_meta,
            "delete_file": self._op_delete_file,
            "purge": self._op_purge,
            "delete_dataset": self._op_delete_dataset,
            "register": self._op_register,
            "auth": self._op_auth,
            "load_meta_delta": self._op_load_meta_delta,
            "list_datasets": self._op_list_datasets,
        }
        try:
            op = dispatch[method]
        except KeyError:
            raise DieselError(f"unknown server method {method!r}") from None
        return op(*args)

    def call(
        self, client: Node, method: str, *args: Any, **kw: Any
    ) -> Generator[Event, Any, Any]:
        """RPC into this server from ``client`` (generator).

        Metadata methods route through the capacity-limited metadata
        pool; data methods through the I/O worker pool.
        """
        ep = self.meta_endpoint if method in _META_METHODS else self.endpoint
        return ep.call(client, method, *args, **kw)

    def call_batch(
        self, client: Node, calls: Sequence[Tuple], **kw: Any
    ) -> Generator[Event, Any, List[Any]]:
        """Vectorized admission: run ``calls`` — ``(method, *args)``
        tuples — as one batch on the request executor (generator).

        One scheduler entry per arrival batch instead of per request:
        the batch pays one marshalling charge, one transfer, one pool
        entry and one aggregated service charge, while each call's
        handler still runs its full logic in order.  All calls in a
        batch must route to the same pool, so a batch may not mix
        metadata and data methods.
        """
        if not calls:
            raise DieselError("call_batch requires at least one call")
        is_meta = calls[0][0] in _META_METHODS
        if any((c[0] in _META_METHODS) != is_meta for c in calls):
            raise DieselError(
                "call_batch cannot mix metadata and data methods"
            )
        ep = self.meta_endpoint if is_meta else self.endpoint
        return ep.call_batch(client, list(calls), **kw)

    # -------------------------------------------------------------- helpers
    def _kv_pipeline_cost(self, n_records: int) -> float:
        """Simulated time for writing ``n_records`` KV pairs, pipelined.

        The server batches metadata writes to the KV cluster (Redis
        pipelining); effective cost is bounded by the cluster's aggregate
        QPS rather than per-record round trips.
        """
        qps = self.cal.redis.cluster_qps
        round_trips = max(1, n_records // self._kv_batch)
        return n_records / qps + round_trips * self.cal.network.latency_s

    def _dataset_record(self, dataset: str) -> meta.DatasetRecord:
        blob = self.kv.local_get_or_none(meta.dataset_key(dataset))
        if blob is None:
            raise DatasetNotFoundError(dataset)
        return meta.DatasetRecord.decode(blob)

    def _file_record(self, dataset: str, path: str) -> meta.FileRecord:
        blob = self.kv.local_get_or_none(meta.file_key(dataset, path))
        if blob is None:
            raise FileNotFoundInDatasetError(path)
        return meta.FileRecord.decode(blob)

    def _chunk_record(self, dataset: str, cid: ChunkId) -> meta.ChunkRecord:
        blob = self.kv.local_get_or_none(meta.chunk_key(dataset, cid))
        if blob is None:
            raise DieselError(f"missing chunk record for {cid.encode()}")
        return meta.ChunkRecord.decode(blob)

    def _next_ts(self, dataset: str) -> int:
        blob = self.kv.local_get_or_none(meta.dataset_key(dataset))
        if blob is None:
            return 1
        return meta.DatasetRecord.decode(blob).update_ts + 1

    def ingest_metadata(
        self, dataset: str, chunk: Chunk, data_size: int | None = None
    ) -> int:
        """Write all KV pairs implied by one chunk; returns the pair count.

        Pure metadata mutation (no simulated time) — callers charge
        :meth:`_kv_pipeline_cost` for it.  ``data_size`` overrides the
        chunk's payload size when ingesting from a header-only decode
        (recovery scans read headers, not payloads).
        """
        pairs: list[tuple[str, bytes]] = []
        ops: list[JournalOp] = []
        for i, f in enumerate(chunk.files):
            if chunk.deletion_bitmap.get(i):
                continue  # tombstoned files must not resurrect on rescan
            rec = meta.FileRecord(f.path, chunk.chunk_id, f.offset, f.length, f.crc32)
            pairs.append((meta.file_key(dataset, f.path), rec.encode()))
            pairs.extend(meta.directory_entry_pairs(dataset, f.path))
            ops.append(JournalOp(OP_APPEND, f.path, rec.encode()))
        ops.append(JournalOp(OP_CHUNK_ADD, "", chunk.chunk_id.raw))
        ts = self._next_ts(dataset)
        crec = meta.ChunkRecord(
            chunk.chunk_id,
            ts,
            data_size if data_size is not None else chunk.data_size,
            len(chunk.files),
            chunk.deleted_count,
            chunk.deletion_bitmap.copy(),
        )
        pairs.append((meta.chunk_key(dataset, chunk.chunk_id), crec.encode()))
        old = self.kv.local_get_or_none(meta.dataset_key(dataset))
        if old is None:
            dsrec = meta.DatasetRecord(dataset, ts, (chunk.chunk_id,))
        else:
            dsrec = meta.DatasetRecord.decode(old).with_chunks([chunk.chunk_id], ts)
        pairs.append((meta.dataset_key(dataset), dsrec.encode()))
        for k, v in pairs:
            self.kv.local_put(k, v)
        n_journal = self.journal.record(dataset, ts, ops)
        if old is None:
            self.registry.add(dataset)
        return len(pairs) + n_journal

    # ------------------------------------------------------------ operations
    def _op_ingest_chunk(
        self, dataset: str, chunk_bytes: bytes
    ) -> Generator[Event, Any, str]:
        """Write flow (Fig 3): store the chunk, extract metadata to KV.

        The object write is journaled: the client's ingest is acked once
        the chunk hits the replicated journal; the NVMe flush proceeds in
        the background (still occupying the device, so concurrent reads
        feel it).  This is how the paper writes ImageNet-1K (~150 GB)
        "within only 3 seconds" (§6.2).
        """
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        chunk = Chunk.decode(chunk_bytes)
        key = object_key(dataset, chunk.chunk_id)
        yield self.env.timeout(
            len(chunk_bytes) / self.cal.diesel.ingest_journal_bps
        )
        flush = self.store.put_journaled(key, chunk_bytes)
        self.env.process(flush, name=f"flush:{chunk.chunk_id.encode()[:8]}")
        n_pairs = self.ingest_metadata(dataset, chunk)
        yield self.env.timeout(self._kv_pipeline_cost(n_pairs))
        self.stats.ingests += 1
        if rec is not None:
            rec.record("ingest", "objectstore", self.env.now - t0,
                       actor=self.name, bytes=len(chunk_bytes))
        return chunk.chunk_id.encode()

    def _read_range(
        self, key: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        result = yield from self.store.get_range(key, offset, length)
        if rec is not None:
            rec.record("range_read", "objectstore", self.env.now - t0,
                       actor=self.name, bytes=length)
        return result

    def _header_size(self, chunk_bytes_key: str) -> int:
        # Range reads address the data section; its start is where the
        # header ends.
        blob = self.store.peek(chunk_bytes_key)
        _, data_offset = Chunk.decode_header(blob)
        return data_offset

    def _op_get_file(
        self, dataset: str, path: str
    ) -> Generator[Event, Any, bytes]:
        """Read one file: KV lookup + chunk range read."""
        rec = self._file_record(dataset, path)
        yield self.env.timeout(1.0 / self.cal.redis.cluster_qps)
        key = object_key(dataset, rec.chunk_id)
        data_offset = self._header_size(key)
        payload = yield from self._read_range(
            key, data_offset + rec.offset, rec.length
        )
        self.stats.file_reads += 1
        return payload

    def _op_read_files(
        self, dataset: str, paths: Sequence[str]
    ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Request executor: batch-read files as merged chunk-wise ranges.

        Files are sorted by (chunk, offset); runs of files adjacent in one
        chunk collapse into a single range read, so a shuffled mini-batch
        that happens to share chunks costs a handful of large reads.
        """
        out = yield from self._batched_read(dataset, paths)
        return out

    def _op_get_files(
        self, dataset: str, paths: Sequence[str]
    ) -> Generator[Event, Any, Dict[str, bytes]]:
        """Batched multi-get: the RPC behind the client's ``get_many()``.

        Same request-executor machinery as ``read_files`` — paths are
        grouped by chunk server-side and each resident chunk is read
        once (one merged range per chunk), however many of its files the
        batch asks for.
        """
        out = yield from self._batched_read(dataset, paths)
        return out

    def _batched_read(
        self, dataset: str, paths: Sequence[str]
    ) -> Generator[Event, Any, Dict[str, bytes]]:
        records = [(p, self._file_record(dataset, p)) for p in paths]
        yield self.env.timeout(len(records) / self.cal.redis.cluster_qps)
        records.sort(key=lambda pr: (pr[1].chunk_id, pr[1].offset))
        out: Dict[str, bytes] = {}
        spans = 0
        i = 0
        while i < len(records):
            cid = records[i][1].chunk_id
            j = i
            # Collect the run of files in this chunk and merge their span.
            while j < len(records) and records[j][1].chunk_id == cid:
                j += 1
            run = records[i:j]
            start = min(r.offset for _, r in run)
            end = max(r.offset + r.length for _, r in run)
            key = object_key(dataset, cid)
            data_offset = self._header_size(key)
            span = yield from self._read_range(key, data_offset + start, end - start)
            for p, r in run:
                out[p] = span[r.offset - start : r.offset - start + r.length]
            spans += 1
            i = j
        self.stats.batch_reads += 1
        self.stats.batch_files += len(records)
        self.stats.batch_spans += spans
        return out

    def _op_get_file_range(
        self, dataset: str, path: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """Partial file read (POSIX pread through FUSE, §5).

        Reads past EOF are clamped, matching read(2) semantics.
        """
        rec = self._file_record(dataset, path)
        if offset < 0 or length < 0:
            raise DieselError("offset and length must be non-negative")
        yield self.env.timeout(1.0 / self.cal.redis.cluster_qps)
        offset = min(offset, rec.length)
        length = min(length, rec.length - offset)
        if length == 0:
            return b""
        key = object_key(dataset, rec.chunk_id)
        data_offset = self._header_size(key)
        payload = yield from self._read_range(
            key, data_offset + rec.offset + offset, length
        )
        self.stats.range_reads += 1
        return payload

    def _op_get_chunk(
        self, dataset: str, encoded_cid: str
    ) -> Generator[Event, Any, bytes]:
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        key = f"{dataset}/{encoded_cid}"
        blob = yield from self.store.get(key)
        self.stats.chunk_reads += 1
        if rec is not None:
            rec.record("chunk_read", "objectstore", self.env.now - t0,
                       actor=self.name, bytes=len(blob))
        return blob

    def _op_get_chunk_range(
        self, dataset: str, encoded_cid: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        key = f"{dataset}/{encoded_cid}"
        result = yield from self._read_range(key, offset, length)
        return result

    def _op_stat(self, dataset: str, path: str) -> dict:
        path = normalize(path)
        blob = self.kv.local_get_or_none(meta.file_key(dataset, path))
        if blob is not None:
            rec = meta.FileRecord.decode(blob)
            return {
                "path": path,
                "is_dir": False,
                "size": rec.length,
                "chunk_id": rec.chunk_id.encode(),
                # Table 3: DL_stat returns "file size, upload time, etc.";
                # the upload second is embedded in the chunk ID (Table 1).
                "upload_time": rec.chunk_id.timestamp,
            }
        # Directory probe: any entries under it?
        if path == "/" or self._op_ls(dataset, path):
            return {"path": path, "is_dir": True, "size": 0,
                    "chunk_id": None, "upload_time": None}
        raise FileNotFoundInDatasetError(path)

    def _op_ls(self, dataset: str, path: str) -> list[str]:
        """readdir = pscan hash(dir)/d ∪ pscan hash(dir)/f (§4.1.1).

        Scans page by page (``pscan_page_size``) so a directory with
        millions of entries never materializes per-shard intermediate
        lists larger than one page.
        """
        names: list[str] = []
        for kind in ("d", "f"):
            prefix = meta.dir_scan_prefix(dataset, path, kind)
            for page in self.kv.local_pscan_iter(
                prefix, self.config.pscan_page_size
            ):
                names.extend(key[len(prefix):] for key, _ in page)
        return sorted(names)

    def _op_exists(self, dataset: str, path: str) -> bool:
        return self.kv.local_get_or_none(meta.file_key(dataset, path)) is not None

    def _op_dataset_ts(self, dataset: str) -> int:
        return self._dataset_record(dataset).update_ts

    def _op_auth(self, user: str, key: str) -> bool:
        """DL_connect credential check (Table 3: user, key)."""
        if self.access_keys is None:
            return True
        return self.access_keys.get(user) == key

    def _op_register(
        self,
        dataset: str,
        client_name: str,
        tenant: str = "default",
        qos_class: str = "batch",
    ) -> dict:
        """Task registration: returns dataset summary for cache planning.

        ``chunk_sizes`` lets capacity-aware placement (locality policy)
        budget each node's partition in bytes rather than chunk counts.
        Multi-tenant callers identify themselves with ``tenant`` /
        ``qos_class`` (defaults keep single-tenant callers unchanged);
        the registration log feeds the ``dlcmd tenants`` view.
        """
        rec = self._dataset_record(dataset)
        sizes = {
            c.encode(): self._chunk_record(dataset, c).size
            for c in rec.chunk_ids
        }
        self.stats.registrations += 1
        self.registrations.append({
            "dataset": dataset,
            "client": client_name,
            "tenant": tenant,
            "qos_class": qos_class,
            "at": self.env.now,
        })
        return {
            "dataset": dataset,
            "update_ts": rec.update_ts,
            "chunk_ids": [c.encode() for c in rec.chunk_ids],
            "chunk_sizes": sizes,
        }

    def _op_save_meta(self, dataset: str) -> Generator[Event, Any, bytes]:
        """Materialize the dataset's metadata snapshot (§4.1.3)."""
        snapshot = self.build_snapshot(dataset)
        yield self.env.timeout(self._kv_pipeline_cost(len(snapshot.files)))
        return snapshot.serialize()

    def build_snapshot(self, dataset: str) -> MetadataSnapshot:
        """Assemble the snapshot from KV (no simulated cost; see save_meta).

        File records stream in via paginated pscan so assembling a huge
        dataset's snapshot holds one page per shard at a time, not the
        whole keyspace slice.
        """
        dsrec = self._dataset_record(dataset)
        files: list[meta.FileRecord] = []
        for page in self.kv.local_pscan_iter(
            meta.file_key_prefix(dataset), self.config.pscan_page_size
        ):
            files.extend(meta.FileRecord.decode(blob) for _, blob in page)
        return build_snapshot(dataset, dsrec.update_ts, files, dsrec.chunk_ids)

    def _op_load_meta_delta(
        self, dataset: str, from_ts: int
    ) -> Generator[Event, Any, dict]:
        """Serve the metadata delta since ``from_ts`` (incremental §4.1.3).

        Returns ``{"mode": "delta", "ts", "entries"}`` with the encoded
        journal entries ``(from_ts, current]`` when the journal still
        retains them, or ``{"mode": "full", "ts"}`` when the client's
        version has fallen past the compaction horizon and must reload
        the full snapshot.  Cost is O(delta) point gets, not O(dataset).
        """
        current = self._dataset_record(dataset).update_ts
        if from_ts > current:
            raise DieselError(
                f"client ts {from_ts} is ahead of dataset ts {current}"
            )
        entries = self.journal.entries_since(dataset, from_ts)
        if entries is None:
            yield self.env.timeout(self._kv_pipeline_cost(1))
            return {"mode": "full", "ts": current}
        yield self.env.timeout(self._kv_pipeline_cost(max(1, len(entries))))
        return {
            "mode": "delta",
            "ts": current,
            "entries": tuple(e.encode() for e in entries),
        }

    def _op_list_datasets(
        self, cursor: Optional[str] = None, limit: Optional[int] = None
    ) -> Generator[Event, Any, Tuple[list[str], Optional[str]]]:
        """One page of the sharded dataset registry (name-sorted)."""
        names, next_cursor = self.registry.list_page(cursor, limit)
        yield self.env.timeout(self._kv_pipeline_cost(max(1, len(names))))
        return names, next_cursor

    def _op_delete_file(
        self, dataset: str, path: str
    ) -> Generator[Event, Any, None]:
        """Delete = tombstone in the chunk's deletion bitmap (§4.1.1).

        The tombstone is written both to the KV chunk record and into the
        stored chunk's header bitmap, keeping chunks self-contained: a
        metadata rebuild from chunks (§4.1.2) must not resurrect deleted
        files.
        """
        path = normalize(path)
        rec = self._file_record(dataset, path)
        # Find the file's index within its chunk from the stored header.
        key = object_key(dataset, rec.chunk_id)
        blob = self.store.peek(key)
        full = Chunk.decode(blob)
        index = full._by_path[path]
        crec = self._chunk_record(dataset, rec.chunk_id).with_deleted(index)
        ts = self._next_ts(dataset)
        dsrec = self._dataset_record(dataset)
        self.kv.local_put(meta.chunk_key(dataset, rec.chunk_id), crec.encode())
        # Patch the on-storage header bitmap (small in-place write).
        patched = Chunk(full.chunk_id, full.files, full.data, crec.bitmap.copy())
        header = patched.header_bytes()
        device = (
            self.store.device
            if isinstance(self.store, ObjectStore)
            else self.store.hdd
        )
        yield from device.write(len(header))
        self.store.patch(key, b"".join((header, full.data)))
        self.kv.local_delete(meta.file_key(dataset, path))
        self.kv.local_delete(
            meta.dir_entry_key(dataset, dirname(path), basename(path), False)
        )
        self.kv.local_put(
            meta.dataset_key(dataset),
            meta.DatasetRecord(dataset, ts, dsrec.chunk_ids).encode(),
        )
        n_journal = self.journal.record(
            dataset, ts, [JournalOp(OP_DELETE, path)]
        )
        yield self.env.timeout(self._kv_pipeline_cost(4 + n_journal))

    def _op_purge(self, dataset: str) -> Generator[Event, Any, int]:
        """DL_purge: rewrite chunks that contain deletion holes (§5).

        For every chunk with tombstones, read it, repack only the live
        files into a fresh chunk (new ID), ingest the new chunk, and drop
        the old one.  Returns the number of chunks rewritten.
        """
        dsrec = self._dataset_record(dataset)
        rewritten = 0
        for cid in list(dsrec.chunk_ids):
            crec = self._chunk_record(dataset, cid)
            if crec.ndeleted == 0:
                continue
            key = object_key(dataset, cid)
            blob = yield from self.store.get(key)
            old_chunk = Chunk.decode(blob)
            live = [
                (f.path, old_chunk.payload(f.path))
                for i, f in enumerate(old_chunk.files)
                if not crec.bitmap.get(i)
            ]
            if live:
                new_chunk = Chunk.build(self._idgen.next(), live)
                new_bytes = new_chunk.encode()
                yield from self.store.put(
                    object_key(dataset, new_chunk.chunk_id), new_bytes
                )
                n_pairs = self.ingest_metadata(dataset, new_chunk)
                yield self.env.timeout(self._kv_pipeline_cost(n_pairs))
            # Drop the old chunk and its record; trim the dataset record.
            yield from self._drop_chunk(dataset, cid)
            rewritten += 1
        return rewritten

    def _drop_chunk(self, dataset: str, cid: ChunkId) -> Generator[Event, Any, None]:
        key = object_key(dataset, cid)
        if isinstance(self.store, ObjectStore):
            yield from self.store.delete(key)
        else:
            self.store._base.pop(key, None)
            yield self.env.timeout(0)
        self.kv.local_delete(meta.chunk_key(dataset, cid))
        ts = self._next_ts(dataset)
        dsrec = self._dataset_record(dataset).without_chunks([cid], ts)
        self.kv.local_put(meta.dataset_key(dataset), dsrec.encode())
        self.journal.record(
            dataset, ts, [JournalOp(OP_CHUNK_DROP, "", cid.raw)]
        )

    def _op_delete_dataset(self, dataset: str) -> Generator[Event, Any, int]:
        """DL_delete_dataset: remove every chunk and KV pair (§5)."""
        dsrec = self._dataset_record(dataset)
        n = 0
        for cid in dsrec.chunk_ids:
            yield from self._drop_chunk(dataset, cid)
            n += 1
        for prefix in (
            meta.file_key_prefix(dataset),
            meta.chunk_key_prefix(dataset),
            f"dir:{dataset}:",
        ):
            for page in self.kv.local_pscan_iter(
                prefix, self.config.pscan_page_size
            ):
                for key, _ in page:
                    self.kv.local_delete(key)
        self.journal.drop(dataset)
        self.registry.remove(dataset)
        self.kv.local_delete(meta.dataset_key(dataset))
        yield self.env.timeout(self._kv_pipeline_cost(max(1, n)))
        return n

    # ------------------------------------------------------ server caching
    def start_background_caching(self, dataset: str):
        """Fig 4: "If a cache miss occurs on the server-side, the server
        will start to cache the dataset in the background."

        Spawns a process that streams every one of the dataset's chunks
        through the tiered store's promotion path.  No-op for untiered
        stores.  Returns the process (an event that yields the number of
        chunks promoted), or None if there is nothing to do.
        """
        if not isinstance(self.store, TieredStore):
            return None
        dsrec = self._dataset_record(dataset)

        def warm():
            promoted = 0
            for cid in dsrec.chunk_ids:
                key = object_key(dataset, cid)
                if key in self.store._base and not self.store.in_ssd(key):
                    size = len(self.store.peek(key))
                    # Explicit promotion, independent of the per-read
                    # promote_on_miss policy: stream from HDD, write SSD.
                    yield from self.store.hdd.read(size)
                    yield from self.store._promote(key, size)
                    promoted += 1
            return promoted

        return self.env.process(warm(), name=f"servercache:{dataset}")

    # ----------------------------------------------------------- inspection
    def datasets(self) -> list[str]:
        """Every dataset name, via the sharded registry (sorted)."""
        return self.registry.dataset_names()

    def dataset_info(self, dataset: str) -> meta.DatasetRecord:
        return self._dataset_record(dataset)
