"""Task-grained distributed cache (paper §4.2, Fig 7).

Each DLT task caches *its own* dataset across *its own* worker nodes:

* every I/O process spawns a DIESEL client instance with a rank;
* the lowest-ranked client on each physical node is elected **master**;
  only masters hold cache partitions, so the connection mesh is
  p×(n−1) (clients × masters) instead of n×(n−1) (full client mesh);
* chunks are partitioned across masters deterministically — the
  ``hash`` policy round-robins over the sorted chunk list (the paper's
  consistent-hash spread), the ``locality`` policy gives each master a
  contiguous slice with capacity-aware spill to the ring, so the
  affinity scheduler can land each worker's reads on its own node's
  master and skip the network hop entirely;
* any client reaches any file in **one hop** via the owning master, and
  a chunk resident on the reader's *own* master is served as a local
  memory copy (no RPC);
* concurrent pulls of one chunk coalesce into a single backend fetch
  (per-master single-flight), and chunks read remotely often enough
  (``hot_chunk_threshold``) are replicated onto the readers' local
  masters;
* with a node-level shared chunk tier attached
  (:mod:`repro.core.shared_cache`), admissions are reference-counted
  *across tasks*: a second task registering the same dataset warms from
  the first task's resident chunks instead of the object store, reads
  can resolve from chunks other tasks admitted on the reader's node,
  and per-tenant quotas / QoS classes govern admission;
* cache policies (§4.2): ``oneshot`` prefetches the full partition in the
  background right after registration; ``on-demand`` pulls a chunk the
  first time one of its files misses;
* on a miss the *file* read falls through to the DIESEL server directly
  (read flow, Fig 4) — the cache never blocks the training loop;
* a node failure kills only this task's cache (containment); recovery
  re-partitions over the survivors and re-streams whole chunks, which is
  why Fig 11b's DIESEL reload is so much faster than a per-file cache
  fill.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.calibration import Calibration, DEFAULT
from repro.core.meta import FileRecord
from repro.core.server import DieselServer
from repro.core.chunk import Chunk
from repro.core.chunk_store import (
    DEFAULT_DISK_BANDWIDTH_BPS,
    DEFAULT_DISK_LATENCY_S,
    make_spec,
    make_store,
)
from repro.errors import (
    CachePeerDownError,
    CircuitOpenError,
    DeadlineExceededError,
    DieselError,
    NodeDownError,
)
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.rpc.connections import ConnectionTable
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event, fan_out


@dataclass(frozen=True)
class CacheClient:
    """One DIESEL client instance participating in the task."""

    name: str
    node: Node
    rank: int


@dataclass(slots=True)
class CacheMasterStats:
    """Per-master cache counters (the bench-reporting seam)."""

    hits: int = 0
    misses: int = 0
    chunks_loaded: int = 0
    bytes_cached: int = 0
    #: Chunks left uncached because the node's memory budget ran out.
    skipped_no_memory: int = 0
    #: Most chunk pulls ever concurrently in flight on this master
    #: (stays 0/1 with ``warmup_fanout`` at its serial default).
    pull_inflight_hwm: int = 0
    #: Pull requests that joined an in-flight backend fetch instead of
    #: issuing their own (the per-master single-flight map).
    coalesced_pulls: int = 0
    #: Hot chunks replicated onto this master from another owner's
    #: partition (read-skew mitigation).
    replicated_chunks: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(slots=True)
class TaskCacheStats:
    """Task-wide read-locality counters (the bench-reporting seam).

    Snapshot built by :attr:`TaskCache.stats`: ``local_hits`` /
    ``remote_hits`` / ``degraded_reads`` are cache-level, while
    ``coalesced_pulls`` / ``replicated_chunks`` sum over the live
    masters.
    """

    #: Cache hits served from the reader's own node's master — a memory
    #: copy, no network hop.
    local_hits: int = 0
    #: Cache hits that paid the one-hop peer RPC.
    remote_hits: int = 0
    #: Reads served node-locally from the shared chunk tier — a chunk
    #: another task admitted (cross-task hit; 0 without a shared tier).
    shared_hits: int = 0
    #: Reads served from the node-local *disk* tier (device read +
    #: optional decompress; 0 without ``cache_store="tiered"``).
    disk_hits: int = 0
    #: Reads served by the server because the owning peer was down.
    degraded_reads: int = 0
    coalesced_pulls: int = 0
    replicated_chunks: int = 0
    #: Hedged-read counters (0 unless hedging is configured): backups
    #: launched, races the backup won, and losers that completed anyway
    #: (duplicate transfers actually paid).
    hedges_fired: int = 0
    hedge_wins: int = 0
    hedge_duplicates: int = 0
    #: Elastic-membership counters: live scale events survived and
    #: chunks drained peer-to-peer (scale-down) or warm-admitted from a
    #: peer instead of the backend (scale-up).
    scale_ups: int = 0
    scale_downs: int = 0
    drained_chunks: int = 0
    peer_warmed_chunks: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CacheMaster:
    """The master client on one node: holds a chunk partition in memory."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        client: CacheClient,
        server: DieselServer,
        dataset: str,
        calibration: Calibration,
        store_spec: Optional[dict] = None,
    ) -> None:
        self.env = env
        self.client = client
        self.node = client.node
        self.server = server
        self.dataset = dataset
        self.cal = calibration
        self.assigned: List[str] = []  # encoded chunk ids
        #: Private chunk residency (RAM or RAM+disk tiers, see
        #: :mod:`repro.core.chunk_store`).  Unused once a shared tier
        #: is attached — residency then lives in the node's
        #: SharedChunkCache store and this master only tracks the
        #: references it holds (``_held``: encoded cid → nbytes).
        self.store = make_store(env, client.node, store_spec)
        self._held: Dict[str, int] = {}
        #: Single-flight map: encoded cid -> completion event of the
        #: backend fetch currently streaming that chunk.
        self._pull_inflight: Dict[str, Event] = {}
        self.stats = CacheMasterStats()
        #: Node-level shared chunk tier (None = private chunks, the
        #: legacy mode).  When attached, admission/eviction/memory are
        #: owned by the shared tier (see ``attach_shared``).
        self.shared = None
        self._shared_task = ""
        self._shared_tenant = "default"
        self._shared_qos = "batch"
        self._recorder = None
        self.endpoint = RpcEndpoint(
            env,
            fabric,
            client.node,
            f"cache:{client.name}",
            handler=self._handle,
            service_s=calibration.diesel.peer_fetch_overhead_s,
            workers=16,
        )

    @property
    def up(self) -> bool:
        return self.endpoint.up

    @property
    def recorder(self):
        """Attached observability recorder (propagated by TaskCache)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value
        self.store.recorder = value

    def attach_shared(
        self, shared, task: str, tenant: str, qos_class: str
    ) -> None:
        """Route this master's admissions through a node-level
        :class:`~repro.core.shared_cache.SharedChunkCache`.

        ``task`` is the registry-issued task key the shared tier
        refcounts under; ``tenant`` / ``qos_class`` govern its quota
        charging and eviction priority.  Must be called before any
        chunk is pulled (the two admission modes do not mix).
        """
        if self._held or self.store.count:
            raise DieselError("attach_shared before any chunk is cached")
        self.shared = shared
        self._shared_task = task
        self._shared_tenant = tenant
        self._shared_qos = qos_class

    def has_chunk(self, encoded_cid: str) -> bool:
        if self.shared is not None:
            return encoded_cid in self._held
        return self.store.contains(encoded_cid)

    @property
    def cached_chunk_count(self) -> int:
        if self.shared is not None:
            return len(self._held)
        return self.store.count

    def _shared_peek(self, encoded_cid: str, path: str) -> Optional[bytes]:
        """Serve a file from the shared tier's warm pool (another task's
        resident chunk) when this task's own reference set misses."""
        if self.shared is None:
            return None
        chunk = self.shared.peek(self.dataset, encoded_cid)
        if chunk is None or path not in chunk:
            return None
        self.shared.note_cross_task_read()
        return chunk.payload(path, verify=False)

    def _ram_chunk(self, encoded_cid: str) -> Optional[Chunk]:
        """This master's RAM-resident copy of a chunk (free to read);
        ``None`` when absent — or resident on the disk tier only, which
        must charge a device read (:meth:`_read_resident`)."""
        if self.shared is not None:
            if encoded_cid not in self._held:
                return None
            return self.shared.peek(self.dataset, encoded_cid)
        got = self.store.get(encoded_cid)
        return got[0] if got is not None else None

    def _disk_resident(self, encoded_cid: str) -> bool:
        """Whether a resident chunk lives on the disk tier only."""
        if self.shared is not None:
            return self.shared.disk_resident(self.dataset, encoded_cid)
        return self.store.tier_of(encoded_cid) == "disk"

    def _read_resident(
        self, encoded_cid: str
    ) -> Generator[Event, Any, Optional[Chunk]]:
        """Cost-charging read of a resident chunk on any tier (disk
        reads pay the device + decompress cost and promote when node
        memory allows)."""
        if self.shared is not None:
            chunk = yield from self.shared.read_resident(
                self.dataset, encoded_cid
            )
            return chunk
        got = yield from self.store.load(encoded_cid)
        return got[0] if got is not None else None

    def _get_file_tiered(
        self, encoded_cid: str, path: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        """Serve a remote ``get_file`` from a disk-resident chunk: the
        endpoint runs this generator so the caller's RPC charges the
        disk read (Fig 4's chain gains a tier between RAM and server)."""
        chunk = yield from self._read_resident(encoded_cid)
        if chunk is None or path not in chunk:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return chunk.payload(path, verify=False)

    def _handle(self, method: str, *args: Any) -> Any:
        if method == "get_file":
            encoded_cid, path = args
            chunk = self._ram_chunk(encoded_cid)
            if chunk is None or path not in chunk:
                if self._disk_resident(encoded_cid):
                    return self._get_file_tiered(encoded_cid, path)
                payload = self._shared_peek(encoded_cid, path)
                if payload is not None:
                    self.stats.hits += 1
                    return payload
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return chunk.payload(path, verify=False)
        if method == "has_chunk":
            return self.has_chunk(args[0])
        if method == "pull_chunk":
            return self._pull_chunk(args[0])
        if method == "get_chunk":
            return self._serve_chunk(args[0])
        raise DieselError(f"unknown cache method {method!r}")

    def _serve_chunk(self, encoded_cid: str):
        """Serve a whole resident chunk to a peer master (drain/warm path).

        RAM-resident chunks return their encoded blob immediately;
        disk-resident chunks hand back a generator so the caller's RPC
        charges the device read.  ``None`` when not resident — the
        caller falls back to the backend.
        """
        chunk = self._ram_chunk(encoded_cid)
        if chunk is not None:
            return chunk.encode()
        if self._disk_resident(encoded_cid):
            return self._serve_chunk_tiered(encoded_cid)
        return None

    def _serve_chunk_tiered(
        self, encoded_cid: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        chunk = yield from self._read_resident(encoded_cid)
        return chunk.encode() if chunk is not None else None

    def admit_from_peer(
        self, donor: Optional["CacheMaster"], encoded_cid: str
    ) -> Generator[Event, Any, Tuple[bool, bool]]:
        """Warm-admit one chunk, preferring a peer master over the backend.

        The elastic-membership pull: a new master warming its share, or
        a successor draining a departing master, fetches the chunk from
        ``donor`` (which still holds it) instead of re-reading the
        object store; the backend is only the fallback.  Single-flight
        via the same in-flight map as backend pulls, so a concurrent
        warmup or on-demand fill of the chunk coalesces.

        In shared-tier mode, admission must stay refcounted in the node
        tier, so the pull is delegated to :meth:`_pull_chunk` — the
        shared tier already warm-admits from any task's resident copy.
        Returns ``(cached, from_peer)``.
        """
        if self.has_chunk(encoded_cid):
            return True, False
        if self.shared is not None:
            cached = yield from self._pull_chunk(encoded_cid)
            return cached, False
        pending = self._pull_inflight.get(encoded_cid)
        if pending is not None:
            self.stats.coalesced_pulls += 1
            yield pending
            return self.has_chunk(encoded_cid), False
        done = self.env.event()
        self._pull_inflight[encoded_cid] = done
        try:
            blob = None
            if donor is not None and donor.up:
                try:
                    blob = yield from donor.endpoint.call(
                        self.node, "get_chunk", encoded_cid,
                        response_bytes=None,
                    )
                except (NodeDownError, CachePeerDownError):
                    blob = None
            from_peer = blob is not None
            if blob is None:
                blob = yield from self.server.call(
                    self.node,
                    "get_chunk",
                    self.dataset,
                    encoded_cid,
                    response_bytes=None,
                )
            tier = yield from self.store.put(
                encoded_cid, Chunk.decode(blob), len(blob)
            )
            if tier is None:
                self.stats.skipped_no_memory += 1
                return False, from_peer
            self.stats.chunks_loaded += 1
            self.stats.bytes_cached += len(blob)
            return True, from_peer
        finally:
            del self._pull_inflight[encoded_cid]
            done.succeed()

    def local_payload(self, encoded_cid: str, path: str) -> Optional[bytes]:
        """Serve one file from a RAM-resident chunk without an RPC.

        The node-local fast path: when the reader sits on this master's
        own node, :class:`TaskCache` calls this directly and charges the
        intra-node memory-copy cost itself.  Returns ``None`` when the
        chunk is absent, the file is not in it, or the chunk sits on
        the disk tier (a free peek must not hide a disk read — the
        caller's tiered path charges it) — the caller then takes the
        regular one-hop/fall-through route.
        """
        chunk = self._ram_chunk(encoded_cid)
        if chunk is None or path not in chunk:
            return None
        self.stats.hits += 1
        return chunk.payload(path, verify=False)

    def _pull_chunk(self, encoded_cid: str) -> Generator[Event, Any, bool]:
        """Fetch one chunk from the server into memory (single-flight).

        Concurrent pulls of the same chunk — n clients faulting it at
        once, warmup racing an on-demand fill, a hot-chunk replication —
        coalesce onto one backend fetch: late arrivals wait on the
        in-flight event and are counted as ``coalesced_pulls``.

        The cache aggregates the node's *free* memory (§4.2): a chunk is
        only cached if the node's memory budget covers it; otherwise it
        stays server-resident (reads for it fall through, Fig 4) and the
        skip is counted.  Returns whether the chunk is now cached.

        With a shared tier attached the admission is delegated: the
        tier owns single-flight (cross-task), memory and eviction; this
        master just records the reference it was granted.
        """
        if self.has_chunk(encoded_cid):
            return True
        if self.shared is not None:
            held = yield from self.shared.acquire(self, encoded_cid)
            if held is None:
                self.stats.skipped_no_memory += 1
                return False
            _, nbytes = held
            self._held[encoded_cid] = nbytes
            self.stats.chunks_loaded += 1
            self.stats.bytes_cached += nbytes
            return True
        pending = self._pull_inflight.get(encoded_cid)
        if pending is not None:
            self.stats.coalesced_pulls += 1
            yield pending
            return self.has_chunk(encoded_cid)
        done = self.env.event()
        self._pull_inflight[encoded_cid] = done
        try:
            blob = yield from self.server.call(
                self.node,
                "get_chunk",
                self.dataset,
                encoded_cid,
                response_bytes=None,  # sized from the returned bytes
            )
            tier = yield from self.store.put(
                encoded_cid, Chunk.decode(blob), len(blob)
            )
            if tier is None:
                self.stats.skipped_no_memory += 1
                return False
            self.stats.chunks_loaded += 1
            self.stats.bytes_cached += len(blob)
            return True
        finally:
            del self._pull_inflight[encoded_cid]
            done.succeed()

    def _pull_chunks_batched(
        self, cids: Sequence[str]
    ) -> Generator[Event, Any, int]:
        """Pull a group of chunks with one vectorized server admission.

        The whole group rides a single :meth:`DieselServer.call_batch`
        — one scheduler entry per RPC phase for the batch instead of
        per chunk — while keeping :meth:`_pull_chunk` semantics: the
        single-flight map still coalesces concurrent pulls per chunk,
        memory-skipped chunks stay server-resident, and the same stats
        counters move.  Returns how many of ``cids`` are now cached.
        """
        if self.shared is not None:
            missing = [c for c in cids if c not in self._held]
            held = yield from self.shared.acquire_batch(self, missing)
            for cid, (_, nbytes) in held.items():
                self._held[cid] = nbytes
                self.stats.chunks_loaded += 1
                self.stats.bytes_cached += nbytes
            self.stats.skipped_no_memory += len(missing) - len(held)
            return len(cids) - len(missing) + len(held)
        cached = 0
        fetch: List[str] = []
        dones: List[Event] = []
        waits: List[Tuple[str, Event]] = []
        for cid in cids:
            if self.store.contains(cid):
                cached += 1
                continue
            pending = self._pull_inflight.get(cid)
            if pending is not None:
                self.stats.coalesced_pulls += 1
                waits.append((cid, pending))
                continue
            done = self.env.event()
            self._pull_inflight[cid] = done
            fetch.append(cid)
            dones.append(done)
        try:
            if fetch:
                blobs = yield from self.server.call_batch(
                    self.node,
                    [("get_chunk", self.dataset, cid) for cid in fetch],
                )
                for cid, blob in zip(fetch, blobs):
                    tier = yield from self.store.put(
                        cid, Chunk.decode(blob), len(blob)
                    )
                    if tier is None:
                        self.stats.skipped_no_memory += 1
                        continue
                    self.stats.chunks_loaded += 1
                    self.stats.bytes_cached += len(blob)
                    cached += 1
        finally:
            for cid, done in zip(fetch, dones):
                del self._pull_inflight[cid]
                done.succeed()
        for cid, pending in waits:
            yield pending
            cached += self.store.contains(cid)
        return cached

    def _pull_group(self, cids: Sequence[str]) -> Generator[Event, Any, int]:
        """One fan-out worker over a chunk group (see ``_pull_one``)."""
        if not self.node.alive:
            return 0
        cached = yield from self._pull_chunks_batched(cids)
        return cached

    def _note_pull_inflight(self, n: int) -> None:
        if n > self.stats.pull_inflight_hwm:
            self.stats.pull_inflight_hwm = n

    def _pull_one(self, encoded_cid: str) -> Generator[Event, Any, bool]:
        """One fan-out worker: pull a chunk unless the node died."""
        if not self.node.alive:
            return False
        cached = yield from self._pull_chunk(encoded_cid)
        return cached

    def _stream(
        self, cids: Sequence[str], fanout: int, batch: int, name: str
    ) -> Generator[Event, Any, int]:
        """Pull ``cids`` with ``fanout`` concurrent streams of batches of
        ``batch`` chunks — the shared engine behind warmup and recovery.

        ``fanout=1, batch=1`` is the legacy serial chunk-by-chunk
        stream; ``batch>1`` admits each group as one vectorized server
        call (:meth:`_pull_chunks_batched`).
        """
        if batch <= 1:
            if fanout <= 1:
                loaded = 0
                for encoded_cid in cids:
                    if not self.node.alive:
                        break
                    cached = yield from self._pull_chunk(encoded_cid)
                    loaded += bool(cached)
                return loaded
            results = yield from fan_out(
                self.env,
                [self._pull_one(cid) for cid in cids],
                fanout,
                name=f"{name}:{self.client.name}",
                watermark=self._note_pull_inflight,
            )
            return sum(bool(r) for r in results)
        groups = [cids[i : i + batch] for i in range(0, len(cids), batch)]
        if fanout <= 1:
            loaded = 0
            for group in groups:
                if not self.node.alive:
                    break
                loaded += yield from self._pull_chunks_batched(group)
            return loaded
        results = yield from fan_out(
            self.env,
            [self._pull_group(g) for g in groups],
            fanout,
            name=f"{name}:{self.client.name}",
            watermark=self._note_pull_inflight,
        )
        return sum(r for r in results if r)

    def prefetch_all(
        self, fanout: int = 1, batch: int = 1
    ) -> Generator[Event, Any, int]:
        """Oneshot policy: stream every assigned chunk from the server.

        ``fanout`` bounds how many pulls this master keeps in flight
        (``DieselConfig.warmup_fanout``); 1 is the legacy serial stream.
        ``batch`` groups pulls into vectorized server admissions
        (``DieselConfig.admission_batch``).  Returns the number of
        chunks actually cached (memory-skipped chunks do not count).
        """
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        loaded = yield from self._stream(self.assigned, fanout, batch, "warm")
        if rec is not None:
            rec.record("warmup", "master", self.env.now - t0,
                       actor=self.client.name, chunks=loaded)
        return loaded

    def reload_missing(
        self, fanout: int = 1, batch: int = 1
    ) -> Generator[Event, Any, int]:
        """Recovery: pull every assigned chunk not yet resident.

        Same bounded fan-out and batching discipline as
        :meth:`prefetch_all`; returns the number of chunks actually
        cached.
        """
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        missing = [cid for cid in self.assigned if not self.has_chunk(cid)]
        reloaded = yield from self._stream(missing, fanout, batch, "recover")
        if rec is not None:
            rec.record("recover", "master", self.env.now - t0,
                       actor=self.client.name, chunks=reloaded)
        return reloaded

    def drop_all(self) -> None:
        """Release all cached chunks and return their memory.

        In shared mode, "release" means dropping this task's references
        — the chunks stay resident as the tier's warm pool (memory is
        reclaimed by shared-tier eviction, not here).
        """
        if self.shared is not None:
            self.shared.release_task(self._shared_task, self._shared_tenant)
            self._held.clear()
            return
        self.store.clear()


class TaskCache:
    """The per-task distributed cache spanning all the task's clients."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        server: DieselServer,
        dataset: str,
        clients: Sequence[CacheClient],
        policy: str = "oneshot",
        calibration: Calibration = DEFAULT,
        fallback_to_server: bool = True,
        warmup_fanout: int = 1,
        admission_batch: int = 1,
        placement: str = "hash",
        locality_spill_ratio: float = 0.9,
        hot_chunk_threshold: int = 0,
        shared=None,
        tenant: str = "default",
        qos_class: str = "batch",
        cache_store: str = "ram",
        disk_tier_bytes: int = 0,
        disk_latency_s: Optional[float] = None,
        disk_bandwidth_bps: Optional[float] = None,
        chunk_compression: bool = False,
    ) -> None:
        if not clients:
            raise DieselError("a task cache needs at least one client")
        if policy not in ("oneshot", "on-demand"):
            raise DieselError(f"unknown cache policy {policy!r}")
        if placement not in ("hash", "locality"):
            raise DieselError(f"unknown cache placement {placement!r}")
        if qos_class not in ("interactive", "batch"):
            raise DieselError(f"unknown QoS class {qos_class!r}")
        if not 0.0 < locality_spill_ratio <= 1.0:
            raise DieselError("locality_spill_ratio must be in (0, 1]")
        if hot_chunk_threshold < 0:
            raise DieselError("hot_chunk_threshold must be >= 0")
        if warmup_fanout < 1:
            raise DieselError("warmup_fanout must be >= 1")
        if admission_batch < 1:
            raise DieselError("admission_batch must be >= 1")
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise DieselError("client names must be unique")
        try:
            #: Chunk-residency spec for this task's *private* masters
            #: (``cache_store="tiered"`` overflows/demotes cold chunks
            #: to a simulated node-local NVMe tier instead of leaving
            #: them server-resident).  With a shared tier attached the
            #: per-node store comes from the registry's spec instead.
            self.store_spec = make_spec(
                cache_store,
                disk_tier_bytes,
                DEFAULT_DISK_LATENCY_S if disk_latency_s is None
                else disk_latency_s,
                DEFAULT_DISK_BANDWIDTH_BPS if disk_bandwidth_bps is None
                else disk_bandwidth_bps,
                chunk_compression,
            )
        except ValueError as exc:
            raise DieselError(str(exc)) from None
        self.env = env
        self.fabric = fabric
        self.server = server
        self.dataset = dataset
        self.policy = policy
        #: Chunk-placement policy: ``hash`` (round-robin ring) or
        #: ``locality`` (co-located contiguous slices, ring spill).
        self.placement = placement
        self.locality_spill_ratio = locality_spill_ratio
        #: Remote reads of one chunk from one node before it is
        #: replicated onto that node's master (0 = off).
        self.hot_chunk_threshold = hot_chunk_threshold
        self.cal = calibration
        self.fallback_to_server = fallback_to_server
        #: Per-master chunk-pull concurrency for warmup and recovery
        #: (``DieselConfig.warmup_fanout``); masters always run
        #: concurrently with each other, this bounds each stream.
        self.warmup_fanout = warmup_fanout
        #: Chunk pulls admitted per vectorized server call during warmup
        #: and recovery (``DieselConfig.admission_batch``); 1 = one RPC
        #: per chunk (legacy).
        self.admission_batch = admission_batch
        #: Node-level shared chunk tier registry
        #: (:class:`~repro.core.shared_cache.SharedCacheRegistry`);
        #: None keeps the legacy task-private cache.  ``tenant`` names
        #: the quota account this task's resident bytes charge;
        #: ``qos_class`` sets its admission priority at the shared tier
        #: (interactive admissions may evict the batch warm pool, not
        #: vice versa).
        self.shared = shared
        self.tenant = tenant
        self.qos_class = qos_class
        #: Registry-issued key the shared tier refcounts this task
        #: under (assigned at register()).
        self.task_key: Optional[str] = None
        #: Reads served node-locally from the shared tier — a chunk
        #: another task admitted (the cross-task hit path).
        self.shared_hits = 0
        #: Reads served from the node-local disk tier (tiered store).
        self.disk_hits = 0
        self.clients = list(clients)
        self.connections = ConnectionTable()
        self.masters: Dict[str, CacheMaster] = {}  # node name -> master
        self._owner_of: Dict[str, CacheMaster] = {}  # encoded cid -> master
        self._registered = False
        self._prefetch_procs: list = []
        self._recorder = None
        #: Fault-tolerance hooks (all optional; None = legacy behaviour).
        #: ``failure_listener.report_failure(master)`` is called when an
        #: in-flight peer call fails — the CacheSupervisor wires itself
        #: in here so detection does not wait for the next heartbeat.
        self.failure_listener = None
        self._retry_policy = None
        self._breakers: Dict[str, Any] = {}  # master client name -> breaker
        self._breaker_threshold = 5
        self._breaker_reset_s = 1.0
        self._rng = None
        #: Reads served by the server because the owning peer failed
        #: mid-call or its breaker was open (Fig 4 fall-through).
        self.degraded_reads = 0
        #: Cache hits served from the reader's own node's master (memory
        #: copy, no RPC) vs hits that paid the one-hop peer fetch.
        self.local_hits = 0
        self.remote_hits = 0
        #: Remote-read tallies per (encoded cid, reader node) feeding
        #: hot-chunk replication, and the replication kicks in flight.
        self._remote_reads: Dict[tuple, int] = {}
        self._replicating: set = set()
        #: On-demand background pulls dropped because the master died.
        self.dropped_pulls = 0
        #: Elastic membership: bumped on every live scale_up/scale_down
        #: so epoch schedulers and prefetchers can re-pin their plans.
        self.membership_version = 0
        #: ``(time, event, names)`` for every live membership change.
        self.scale_events: List[tuple] = []
        self._membership_listeners: List[Any] = []
        self.scale_up_count = 0
        self.scale_down_count = 0
        self.drained_chunks = 0
        self.peer_warmed_chunks = 0
        #: Hedged-read machinery (None/off = legacy single-attempt peer
        #: path; see ``configure_hedging``).
        self._hedge_enabled = False
        self._hedge_delay_s = 0.0
        self._hedged_call = None
        self.peer_latency = None
        self.hedge_stats = None
        #: Which layer served the most recent read_file — published for
        #: the client's span attribution (only updated while a recorder
        #: is attached, so the bare hot path stays untouched).
        self.last_resolution = "task_cache"

    @property
    def stats(self) -> TaskCacheStats:
        """Aggregated locality counters (plugs into ``stats_row``)."""
        hs = self.hedge_stats
        return TaskCacheStats(
            local_hits=self.local_hits,
            remote_hits=self.remote_hits,
            shared_hits=self.shared_hits,
            disk_hits=self.disk_hits,
            degraded_reads=self.degraded_reads,
            coalesced_pulls=sum(
                m.stats.coalesced_pulls for m in self.masters.values()
            ),
            replicated_chunks=sum(
                m.stats.replicated_chunks for m in self.masters.values()
            ),
            hedges_fired=hs.hedges_fired if hs is not None else 0,
            hedge_wins=hs.backup_wins if hs is not None else 0,
            hedge_duplicates=hs.duplicate_transfers if hs is not None else 0,
            scale_ups=self.scale_up_count,
            scale_downs=self.scale_down_count,
            drained_chunks=self.drained_chunks,
            peer_warmed_chunks=self.peer_warmed_chunks,
        )

    @property
    def recorder(self):
        """Attached observability recorder (None = disabled)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        """Propagate the recorder to every cache master and its endpoint."""
        self._recorder = value
        for m in self.masters.values():
            m.recorder = value
            m.endpoint.recorder = value

    # ------------------------------------------------------- fault tolerance
    def configure_ft(self, config) -> None:
        """Enable retry + per-master circuit breakers on the peer path.

        ``config`` is a :class:`~repro.core.config.DieselConfig`; its
        ``rpc_retries`` / ``rpc_backoff_base_s`` / ``rpc_deadline_s``
        fields shape the retry policy and ``breaker_threshold`` /
        ``breaker_reset_s`` the per-peer breakers.  Without this call
        the data path behaves exactly as before (single attempt, no
        breaker) except that mid-call peer death degrades to the server
        instead of erroring.
        """
        import random

        from repro.ft.retry import RetryPolicy

        self._retry_policy = RetryPolicy.from_config(config)
        self._breaker_threshold = config.breaker_threshold
        self._breaker_reset_s = config.breaker_reset_s
        self._breakers.clear()
        # Seeded: retry jitter must not vary run to run.
        self._rng = random.Random(0xD1E5E1)
        if config.hedge_enabled:
            self.configure_hedging(config)

    def configure_hedging(
        self,
        config=None,
        *,
        enabled: bool = True,
        delay_s: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> None:
        """Enable hedged reads on the remote-peer path.

        Once a remote ``get_file`` outlives its hedge delay — fixed
        (``hedge_delay_s > 0``) or calibrated per peer from the EWMA
        latency tracker (``mean + 4·dev`` ≈ p95) — a backup request is
        fired to a replica master holding the chunk (steered to the
        fastest peer by EWMA) or to the backend, and whichever answers
        first wins; the loser is cancelled so its NIC channels and RPC
        worker slots drain through their ``finally`` blocks.  While a
        read is hedged it bypasses retry/breaker (the backup *is* the
        recovery path); local fast paths are never hedged.
        """
        from repro.ft.hedge import HedgeStats, PeerLatencyTracker, hedged_call

        if config is not None:
            enabled = config.hedge_enabled
            delay_s = config.hedge_delay_s if delay_s is None else delay_s
            alpha = config.hedge_ewma_alpha if alpha is None else alpha
        self._hedge_enabled = bool(enabled)
        self._hedge_delay_s = float(delay_s or 0.0)
        self._hedged_call = hedged_call
        if self.peer_latency is None:
            self.peer_latency = PeerLatencyTracker(alpha=alpha or 0.2)
        if self.hedge_stats is None:
            self.hedge_stats = HedgeStats()

    # --------------------------------------------------- elastic membership
    def add_membership_listener(self, callback) -> None:
        """Register ``callback(event, names)`` fired on every live
        scale_up/scale_down (``event`` is the string, ``names`` the
        affected master client names / node names)."""
        self._membership_listeners.append(callback)

    def _notify_membership(self, event: str, names: Sequence[str]) -> None:
        self.scale_events.append((self.env.now, event, tuple(names)))
        rec = self._recorder
        if rec is not None:
            rec.count(f"cache_{event}", "task_cache")
        for cb in list(self._membership_listeners):
            cb(event, names)

    def _breaker_for(self, master: CacheMaster):
        breaker = self._breakers.get(master.client.name)
        if breaker is None:
            from repro.ft.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                self.env, self._breaker_threshold, self._breaker_reset_s,
                name=master.client.name,
            )
            self._breakers[master.client.name] = breaker
        return breaker

    def _note_peer_failure(self, master: CacheMaster) -> None:
        listener = self.failure_listener
        if listener is not None:
            listener.report_failure(master)
        rec = self._recorder
        if rec is not None:
            rec.count("ft_peer_failure", "task_cache")

    # ------------------------------------------------------------ lifecycle
    def register(self) -> Generator[Event, Any, dict]:
        """Register the task: elect masters, partition chunks, connect.

        Returns the server's registration summary.  Under the ``oneshot``
        policy, background prefetch processes are started (registration
        does not wait for them; see :meth:`wait_warm`).
        """
        if self._registered:
            raise DieselError("task cache already registered")
        # Any client can perform registration; use the global lowest rank.
        leader = min(self.clients, key=lambda c: (c.rank, c.name))
        summary = yield from self.server.call(
            leader.node, "register", self.dataset, leader.name,
            self.tenant, self.qos_class,
        )
        # Master election: lowest rank per physical node (§4.2).
        by_node: Dict[str, CacheClient] = {}
        for c in self.clients:
            cur = by_node.get(c.node.name)
            if cur is None or (c.rank, c.name) < (cur.rank, cur.name):
                by_node[c.node.name] = c
        if self.shared is not None:
            self.task_key = self.shared.next_task_id()
        for node_name in sorted(by_node):
            elected = by_node[node_name]
            master = CacheMaster(
                self.env, self.fabric, elected, self.server, self.dataset,
                self.cal, store_spec=self.store_spec,
            )
            if self.shared is not None:
                master.attach_shared(
                    self.shared.for_node(elected.node),
                    self.task_key, self.tenant, self.qos_class,
                )
            if self._recorder is not None:
                master.recorder = self._recorder
                master.endpoint.recorder = self._recorder
            self.masters[node_name] = master
        # Deterministic chunk partitioning over sorted masters.
        master_list = [self.masters[k] for k in sorted(self.masters)]
        chunk_ids = summary["chunk_ids"]
        if self.placement == "locality":
            self._partition_locality(
                chunk_ids, master_list, summary.get("chunk_sizes") or {}
            )
        else:
            # hash: round-robin ring (the consistent-hash spread).
            for i, encoded_cid in enumerate(chunk_ids):
                owner = master_list[i % len(master_list)]
                owner.assigned.append(encoded_cid)
                self._owner_of[encoded_cid] = owner
        # Every client connects to every master: p×(n−1) connections.
        for c in self.clients:
            for m in master_list:
                self.connections.connect(c.name, m.client.name)
        if self.policy == "oneshot":
            for m in master_list:
                proc = self.env.process(
                    m.prefetch_all(self.warmup_fanout, self.admission_batch),
                    name=f"prefetch:{m.client.name}",
                )
                self._prefetch_procs.append(proc)
        self._registered = True
        return summary

    def _partition_locality(
        self,
        chunk_ids: Sequence[str],
        master_list: Sequence[CacheMaster],
        chunk_sizes: Dict[str, int],
    ) -> None:
        """Locality placement: contiguous slices with capacity-aware spill.

        Master *k* owns slice *k* of the chunk list, so each node's
        partition forms one owner bucket the owner-bucketed shuffle and
        the affinity scheduler keep aligned with the co-located worker.
        A node only takes chunks up to ``locality_spill_ratio`` of its
        free memory (budgeted in bytes via the registration summary's
        chunk sizes); overflow spills deterministically round-robin over
        the ring, to the first node with budget left.  When every budget
        is exhausted the plain ring assignment applies — memory pressure
        is then handled at pull time (``skipped_no_memory``, §4.2).
        """
        p = len(master_list)
        budgets = [
            int(m.node.memory.level * self.locality_spill_ratio)
            for m in master_list
        ]
        fills = [0] * p
        per_slice = -(-len(chunk_ids) // p)  # ceil division

        def assign(k: int, encoded_cid: str) -> None:
            fills[k] += chunk_sizes.get(encoded_cid, 0)
            master_list[k].assigned.append(encoded_cid)
            self._owner_of[encoded_cid] = master_list[k]

        spilled: list[str] = []
        for k in range(p):
            for encoded_cid in chunk_ids[k * per_slice : (k + 1) * per_slice]:
                size = chunk_sizes.get(encoded_cid, 0)
                if fills[k] + size > budgets[k]:
                    spilled.append(encoded_cid)
                else:
                    assign(k, encoded_cid)
        for i, encoded_cid in enumerate(spilled):
            size = chunk_sizes.get(encoded_cid, 0)
            k = next(
                (
                    (i + j) % p
                    for j in range(p)
                    if fills[(i + j) % p] + size <= budgets[(i + j) % p]
                ),
                i % p,
            )
            assign(k, encoded_cid)

    def chunk_owner_node(self, chunk_id) -> Optional[str]:
        """Name of the node whose master owns ``chunk_id`` (or ``None``).

        Accepts a :class:`~repro.util.ids.ChunkId` or its encoded form —
        this is the ``owner_of`` hook the owner-bucketed shuffle
        (:func:`repro.core.shuffle.chunkwise_shuffle`) and the affinity
        scheduler consume.
        """
        encoded = chunk_id if isinstance(chunk_id, str) else chunk_id.encode()
        master = self._owner_of.get(encoded)
        return master.node.name if master is not None else None

    def wait_warm(self) -> Generator[Event, Any, int]:
        """Block until all oneshot prefetches finish; returns chunks loaded."""
        total = 0
        for proc in self._prefetch_procs:
            loaded = yield proc
            total += loaded
        return total

    def deregister(self) -> int:
        """Tear the task down: drop every cached chunk (or, with a
        shared tier, every shared-tier reference this task holds).

        Safe mid-epoch: chunks this task admitted stay resident in the
        shared tier's warm pool at refcount 0, so concurrent tasks keep
        hitting them and a later task re-warms instead of re-fetching.
        Returns the number of chunks that were held.
        """
        if not self._registered:
            raise DieselError("task cache not registered")
        held = 0
        for m in self.masters.values():
            held += m.cached_chunk_count
            m.drop_all()
        self._registered = False
        return held

    # ------------------------------------------------------------ accounting
    def connection_count(self) -> int:
        return self.connections.count()

    def expected_connection_count(self) -> int:
        """The paper's p×(n−1) (self-connections excluded)."""
        p = len(self.masters)
        n = len(self.clients)
        return p * n - p  # each master's self-connection is not counted

    def cached_chunks(self) -> int:
        return sum(m.cached_chunk_count for m in self.masters.values())

    def cached_bytes(self) -> int:
        return sum(m.stats.bytes_cached for m in self.masters.values())

    def hit_ratio(self) -> float:
        hits = sum(m.stats.hits for m in self.masters.values())
        misses = sum(m.stats.misses for m in self.masters.values())
        total = hits + misses
        return hits / total if total else 0.0

    def owner_of(self, encoded_cid: str) -> CacheMaster:
        try:
            return self._owner_of[encoded_cid]
        except KeyError:
            raise DieselError(
                f"chunk {encoded_cid} is not part of this task's dataset"
            ) from None

    # ------------------------------------------------------------- data path
    def read_file(
        self, client: CacheClient, record: FileRecord
    ) -> Generator[Event, Any, bytes]:
        """Read one file through the cache (one-hop peer fetch).

        Miss and peer-failure behaviour follows Fig 4: the file read falls
        through to the DIESEL server; under ``on-demand`` the owning
        master pulls the chunk in the background so later reads hit.
        """
        if not self._registered:
            raise DieselError("task cache not registered")
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        encoded_cid = record.chunk_id.encode()
        master = self.owner_of(encoded_cid)
        # Node-local fast path: the reader's own master holds the chunk
        # (its locality partition, or a hot-chunk replica) — serve it as
        # an intra-node memory copy, no RPC hop at all.
        local = self.masters.get(client.node.name)
        serving = master
        if (
            local is not None
            and local is not master
            and local.up
            and local.has_chunk(encoded_cid)
        ):
            serving = local
        if serving.node is client.node and serving.up:
            payload = serving.local_payload(encoded_cid, record.path)
            if payload is not None:
                self.local_hits += 1
                yield self.env.timeout(
                    self.fabric.local_latency_s
                    + len(payload) / self.fabric.local_bandwidth_bps
                )
                if rec is not None:
                    self.last_resolution = "local_master"
                    rec.record("cache_read", "local_master",
                               self.env.now - t0, actor=client.name,
                               path=record.path)
                return payload
            # Disk-tier fast path: the chunk is resident on the node's
            # own master but demoted/overflowed to the simulated NVMe
            # tier — serve it for a device read (+ decompress), still
            # cheaper than a backend fetch, promoting when memory
            # allows.
            if self.shared is None and serving._disk_resident(encoded_cid):
                chunk = yield from serving._read_resident(encoded_cid)
                if chunk is not None and record.path in chunk:
                    payload = chunk.payload(record.path, verify=False)
                    serving.stats.hits += 1
                    self.disk_hits += 1
                    yield self.env.timeout(
                        self.fabric.local_latency_s
                        + len(payload) / self.fabric.local_bandwidth_bps
                    )
                    if rec is not None:
                        self.last_resolution = "disk_tier"
                        rec.record("cache_read", "disk_tier",
                                   self.env.now - t0, actor=client.name,
                                   path=record.path)
                    return payload
        # Shared-tier fast path: a chunk some *other* task admitted on
        # the reader's node serves this read as a node-local memory copy
        # — the cross-task hit that makes N tasks × 1 dataset cheap.
        if self.shared is not None and client.node.alive:
            tier = self.shared.for_node(client.node)
            chunk = tier.peek(self.dataset, encoded_cid)
            if chunk is not None and record.path in chunk:
                payload = chunk.payload(record.path, verify=False)
                tier.note_cross_task_read()
                self.shared_hits += 1
                yield self.env.timeout(
                    self.fabric.local_latency_s
                    + len(payload) / self.fabric.local_bandwidth_bps
                )
                if rec is not None:
                    self.last_resolution = "shared_tier"
                    rec.record("cache_read", "shared_tier",
                               self.env.now - t0, actor=client.name,
                               path=record.path)
                return payload
            # Shared-tier *disk* hit: the chunk is resident on this
            # node but demoted to the NVMe tier — pay the device read
            # (+ decompress, + promote when memory allows) instead of
            # a backend round-trip.
            if tier.disk_resident(self.dataset, encoded_cid):
                chunk = yield from tier.read_resident(
                    self.dataset, encoded_cid
                )
                if chunk is not None and record.path in chunk:
                    payload = chunk.payload(record.path, verify=False)
                    tier.note_cross_task_read()
                    self.disk_hits += 1
                    yield self.env.timeout(
                        self.fabric.local_latency_s
                        + len(payload) / self.fabric.local_bandwidth_bps
                    )
                    if rec is not None:
                        self.last_resolution = "disk_tier"
                        rec.record("cache_read", "disk_tier",
                                   self.env.now - t0, actor=client.name,
                                   path=record.path)
                    return payload
        payload = None
        peer_answered = False
        hedge_source = ""
        if master.up:
            try:
                if self._hedge_enabled and master.node is not client.node:
                    payload, hedge_source = yield from self._hedged_read(
                        client, master, encoded_cid, record
                    )
                    peer_answered = hedge_source == "peer"
                elif self._retry_policy is not None:
                    payload = yield from master.endpoint.call_with_retry(
                        self._retry_policy,
                        client.node,
                        "get_file",
                        encoded_cid,
                        record.path,
                        rng=self._rng,
                        breaker=self._breaker_for(master),
                        response_bytes=record.length,
                    )
                    peer_answered = True
                else:
                    payload = yield from master.endpoint.call(
                        client.node,
                        "get_file",
                        encoded_cid,
                        record.path,
                        response_bytes=record.length,
                    )
                    peer_answered = True
            except CircuitOpenError as exc:
                # Known-bad peer: short-circuit straight to the server
                # without paying another attempt.
                self.degraded_reads += 1
                if not self.fallback_to_server:
                    raise CachePeerDownError(master.client.name) from exc
            except (NodeDownError, DeadlineExceededError) as exc:
                # Master died mid-call: degrade to the server path
                # (Fig 4 fall-through) and feed the detector now.
                self.degraded_reads += 1
                self._note_peer_failure(master)
                if not self.fallback_to_server:
                    raise CachePeerDownError(master.client.name) from exc
        else:
            # Peer already known down: this read degrades to the server;
            # telling the detector collapses detection latency to the
            # first read that noticed.
            self.degraded_reads += 1
            self._note_peer_failure(master)
            if not self.fallback_to_server:
                raise CachePeerDownError(master.client.name)
        if hedge_source == "replica":
            # A backup replica beat (or replaced) the straggling owner.
            self.remote_hits += 1
            if rec is not None:
                self.last_resolution = "task_cache"
                rec.record("cache_read", "task_cache", self.env.now - t0,
                           actor=client.name, path=record.path)
            return payload
        if hedge_source == "server":
            # The backend won the hedge race outright.
            if rec is not None:
                self.last_resolution = "server"
                rec.record("cache_read", "server", self.env.now - t0,
                           actor=client.name, path=record.path)
            return payload
        if peer_answered:
            if payload is not None:
                if master.node is client.node:
                    self.local_hits += 1
                else:
                    self.remote_hits += 1
                    self._note_remote_read(client, master, encoded_cid)
                if rec is not None:
                    self.last_resolution = "task_cache"
                    rec.record("cache_read", "task_cache",
                               self.env.now - t0, actor=client.name,
                               path=record.path)
                return payload
            if self.policy == "on-demand" and master.up:
                # Kick a background chunk pull; don't wait for it.
                self.env.process(
                    self._background_pull(client, master, encoded_cid),
                    name=f"pull:{encoded_cid[:8]}",
                )
        payload = yield from self.server.call(
            client.node,
            "get_file",
            self.dataset,
            record.path,
            response_bytes=record.length,
        )
        if rec is not None:
            self.last_resolution = "server"
            rec.record("cache_read", "server", self.env.now - t0,
                       actor=client.name, path=record.path)
        return payload

    def _background_pull(
        self, client: CacheClient, master: CacheMaster, encoded_cid: str
    ) -> Generator[Event, Any, None]:
        """On-demand fill, decoupled from the read that triggered it.

        The read already fell through to the server, so this pull is
        pure opportunism: if the master (or the server behind it) dies
        mid-pull, log-and-drop — an orphaned failure must never
        propagate into the engine or stall the training loop.
        """
        try:
            yield from master.endpoint.call(
                client.node, "pull_chunk", encoded_cid
            )
        except (NodeDownError, CachePeerDownError):
            self.dropped_pulls += 1
            self._note_peer_failure(master)
            rec = self._recorder
            if rec is not None:
                rec.count("ft_dropped_pull", "task_cache")

    # ---------------------------------------------------------- hedged reads
    def _peer_get_file(
        self,
        client: CacheClient,
        master: CacheMaster,
        encoded_cid: str,
        record: FileRecord,
    ) -> Generator[Event, Any, Optional[bytes]]:
        """One peer ``get_file`` attempt, feeding the latency tracker."""
        t0 = self.env.now
        payload = yield from master.endpoint.call(
            client.node,
            "get_file",
            encoded_cid,
            record.path,
            response_bytes=record.length,
        )
        if self.peer_latency is not None:
            self.peer_latency.observe(master.client.name, self.env.now - t0)
        return payload

    def _hedge_backup_target(
        self, client: CacheClient, master: CacheMaster, encoded_cid: str
    ) -> Optional[CacheMaster]:
        """The replica master a hedge backup should hit: any other up
        master holding the chunk, steered to the lowest-EWMA peer."""
        candidates = [
            m
            for m in self.masters.values()
            if m is not master and m.up and m.has_chunk(encoded_cid)
        ]
        if not candidates:
            return None
        if len(candidates) == 1 or self.peer_latency is None:
            return candidates[0]
        fastest = self.peer_latency.fastest(
            [m.client.name for m in candidates]
        )
        for m in candidates:
            if m.client.name == fastest:
                return m
        return candidates[0]

    def _hedge_backup_read(
        self,
        client: CacheClient,
        master: CacheMaster,
        encoded_cid: str,
        record: FileRecord,
    ) -> Generator[Event, Any, Tuple[str, bytes]]:
        """The backup leg of a hedge: replica master if one holds the
        chunk (EWMA-steered), else the backend."""
        replica = self._hedge_backup_target(client, master, encoded_cid)
        if replica is not None:
            try:
                payload = yield from self._peer_get_file(
                    client, replica, encoded_cid, record
                )
            except (NodeDownError, CachePeerDownError):
                payload = None
            if payload is not None:
                return "replica", payload
        payload = yield from self.server.call(
            client.node,
            "get_file",
            self.dataset,
            record.path,
            response_bytes=record.length,
        )
        return "server", payload

    def _hedged_read(
        self,
        client: CacheClient,
        master: CacheMaster,
        encoded_cid: str,
        record: FileRecord,
    ) -> Generator[Event, Any, Tuple[Optional[bytes], str]]:
        """Remote read with a hedge: race the owner against a delayed
        backup.  Returns ``(payload, source)`` with source ``"peer"``
        (owner answered — payload None means a clean miss), ``"replica"``
        or ``"server"`` (the backup won or the owner failed mid-race).

        Until the peer's latency tracker is calibrated (or with an
        uncalibratable fixed delay of 0), reads stay unhedged — they
        just feed the tracker.
        """
        delay = self._hedge_delay_s
        if delay <= 0.0:
            calibrated = self.peer_latency.hedge_delay(master.client.name)
            if calibrated is None:
                payload = yield from self._peer_get_file(
                    client, master, encoded_cid, record
                )
                return payload, "peer"
            delay = calibrated
        outcome = yield from self._hedged_call(
            self.env,
            self._peer_get_file(client, master, encoded_cid, record),
            lambda: self._hedge_backup_read(
                client, master, encoded_cid, record
            ),
            delay,
            stats=self.hedge_stats,
            name=f"hedge:{encoded_cid[:8]}",
        )
        err = outcome.primary_error
        if err is not None and isinstance(
            err, (NodeDownError, CachePeerDownError, DeadlineExceededError)
        ):
            # The owner failed while the backup saved the read: feed the
            # detector exactly like the unhedged failure path.
            self._note_peer_failure(master)
        if outcome.winner == "primary":
            return outcome.value, "peer"
        source, payload = outcome.value
        return payload, source

    # ------------------------------------------------- hot-chunk replication
    def _note_remote_read(
        self, client: CacheClient, master: CacheMaster, encoded_cid: str
    ) -> None:
        """Tally a cross-node hit; replicate the chunk once it runs hot.

        When one node keeps paying the RPC hop for the same chunk
        (``hot_chunk_threshold`` remote reads), the chunk is pulled onto
        that node's master in the background so later reads take the
        local fast path.  Replicas live in the master's chunk map but
        not in ``assigned`` — ownership, and therefore recovery, is
        unchanged.
        """
        if self.hot_chunk_threshold <= 0:
            return
        local = self.masters.get(client.node.name)
        if (
            local is None
            or local is master
            or not local.up
            or local.has_chunk(encoded_cid)
        ):
            return
        key = (encoded_cid, client.node.name)
        n = self._remote_reads.get(key, 0) + 1
        self._remote_reads[key] = n
        if n >= self.hot_chunk_threshold and key not in self._replicating:
            self._replicating.add(key)
            self.env.process(
                self._replicate(local, encoded_cid),
                name=f"replicate:{encoded_cid[:8]}",
            )

    def _replicate(
        self, local: CacheMaster, encoded_cid: str
    ) -> Generator[Event, Any, None]:
        """Background pull of a hot chunk onto the reader's master.

        Pure opportunism like :meth:`_background_pull`: failures are
        dropped (the owner keeps serving), and the single-flight map
        inside ``_pull_chunk`` already coalesces a concurrent warmup or
        on-demand fill of the same chunk.
        """
        try:
            cached = yield from local._pull_chunk(encoded_cid)
        except (NodeDownError, CachePeerDownError, DieselError):
            return
        if cached:
            local.stats.replicated_chunks += 1
            rec = self._recorder
            if rec is not None:
                rec.count("hot_replicate", "task_cache")

    # -------------------------------------------------------------- recovery
    def dead_masters(self) -> list[CacheMaster]:
        return [m for m in self.masters.values() if not m.up]

    def recover(
        self, fanout: Optional[int] = None
    ) -> Generator[Event, Any, int]:
        """Re-partition dead masters' chunks over survivors and reload them.

        Chunk-granular recovery: survivors stream whole chunks from the
        object store, exploiting sequential bandwidth (Fig 11b).
        ``fanout`` (default: this cache's ``warmup_fanout``) bounds each
        survivor's pull concurrency; when > 1 all survivors re-stream
        concurrently, so recovery time scales with the *largest
        partition*, not the orphaned total.  Returns the number of
        chunks re-loaded.
        """
        limit = self.warmup_fanout if fanout is None else fanout
        dead = self.dead_masters()
        if not dead:
            return 0
        survivors = [m for m in self.masters.values() if m.up]
        if not survivors:
            raise CachePeerDownError("all cache masters are down")
        if self.shared is not None:
            # Forget the crashed nodes' shared-tier residency (their
            # memory died with them).  Survivors' re-pulls go through
            # the shared tier: chunks another task already holds on a
            # survivor warm-admit — refcounts are rebuilt, chunks are
            # not duplicated and the backend is not re-read for them.
            self.shared.purge_dead()
        orphaned: list[str] = []
        for m in dead:
            orphaned.extend(m.assigned)
            m.assigned = []
            del self.masters[m.node.name]
            self.connections.drop_endpoint(m.client.name)
        survivors.sort(key=lambda m: m.node.name)
        if self.placement == "locality":
            # Policy-preserving re-home: survivors' own partitions are
            # untouched (their nodes keep reading locally); an orphaned
            # chunk goes to a survivor already holding a replica of it
            # when one exists, else deals round-robin over the ring —
            # the same deterministic spill rule as registration.
            rr = 0
            for encoded_cid in orphaned:
                owner = next(
                    (m for m in survivors if m.has_chunk(encoded_cid)), None
                )
                if owner is None:
                    owner = survivors[rr % len(survivors)]
                    rr += 1
                owner.assigned.append(encoded_cid)
                self._owner_of[encoded_cid] = owner
        else:
            for i, encoded_cid in enumerate(orphaned):
                owner = survivors[i % len(survivors)]
                owner.assigned.append(encoded_cid)
                self._owner_of[encoded_cid] = owner
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        if limit <= 1 and self.admission_batch <= 1:
            # Legacy serial re-stream: survivor after survivor.
            reloaded = 0
            for m in survivors:
                for encoded_cid in m.assigned:
                    if not m.has_chunk(encoded_cid):
                        cached = yield from m._pull_chunk(encoded_cid)
                        reloaded += bool(cached)
        else:
            per_master = yield from fan_out(
                self.env,
                [m.reload_missing(limit, self.admission_batch)
                 for m in survivors],
                len(survivors),
                name="recover",
            )
            reloaded = sum(per_master)
        if rec is not None:
            rec.record("recover", "total", self.env.now - t0,
                       chunks=reloaded, survivors=len(survivors))
        return reloaded

    # ---------------------------------------------------- elastic membership
    def scale_up(
        self, new_clients: Sequence[CacheClient], warm: bool = True
    ) -> Generator[Event, Any, dict]:
        """Grow the task's membership live (no cold restart).

        New clients join the mesh; nodes without a master elect one
        (lowest rank per node, as at registration); each new master
        takes an equal share of chunks stolen from the most-loaded
        donors' partition tails — minimal movement: everything else
        stays owned, resident, and serving throughout.  With ``warm``,
        the new masters then admit their share *peer-to-peer* from the
        donors still holding those chunks (falling back to the backend),
        so warm-up never re-reads the object store for resident data;
        the donor keeps its copy as a replica, exactly like hot-chunk
        replication.  Reads of a moved chunk before it lands simply fall
        through to the server (Fig 4) — never an error.

        Bumps :attr:`membership_version` and fires membership listeners
        so epoch plans re-pin on the fly.  Returns a summary dict.
        """
        if not self._registered:
            raise DieselError("task cache not registered")
        new_clients = list(new_clients)
        if not new_clients:
            raise DieselError("scale_up needs at least one client")
        taken = {c.name for c in self.clients}
        for c in new_clients:
            if c.name in taken:
                raise DieselError(f"client name {c.name!r} already in task")
            taken.add(c.name)
        # Master election on nodes that do not have one yet.
        by_node: Dict[str, CacheClient] = {}
        for c in new_clients:
            if c.node.name in self.masters:
                continue
            cur = by_node.get(c.node.name)
            if cur is None or (c.rank, c.name) < (cur.rank, cur.name):
                by_node[c.node.name] = c
        new_masters: List[CacheMaster] = []
        for node_name in sorted(by_node):
            elected = by_node[node_name]
            master = CacheMaster(
                self.env, self.fabric, elected, self.server, self.dataset,
                self.cal, store_spec=self.store_spec,
            )
            if self.shared is not None:
                master.attach_shared(
                    self.shared.for_node(elected.node),
                    self.task_key, self.tenant, self.qos_class,
                )
            if self._recorder is not None:
                master.recorder = self._recorder
                master.endpoint.recorder = self._recorder
            self.masters[node_name] = master
            new_masters.append(master)
        # Mesh growth: new clients ↔ all masters, old clients ↔ new masters.
        all_masters = [self.masters[k] for k in sorted(self.masters)]
        for c in new_clients:
            for m in all_masters:
                self.connections.connect(c.name, m.client.name)
        for c in self.clients:
            for m in new_masters:
                self.connections.connect(c.name, m.client.name)
        self.clients.extend(new_clients)
        # Rebalance: equal-share steal from the largest partitions.
        moves: Dict[CacheMaster, List[Tuple[str, CacheMaster]]] = {}
        moved = 0
        if new_masters:
            target = len(self._owner_of) // len(self.masters)
            donors = [m for m in all_masters if m not in new_masters]
            for nm in new_masters:
                items: List[Tuple[str, CacheMaster]] = []
                for _ in range(target):
                    donor = max(donors, key=lambda m: len(m.assigned))
                    if len(donor.assigned) <= target:
                        break
                    encoded_cid = donor.assigned.pop()
                    self._owner_of[encoded_cid] = nm
                    nm.assigned.append(encoded_cid)
                    items.append((encoded_cid, donor))
                if items:
                    moves[nm] = items
                    moved += len(items)
        self.scale_up_count += 1
        self.membership_version += 1
        self._notify_membership(
            "scale_up", [m.client.name for m in new_masters]
        )
        warmed = peer_warmed = 0
        if warm and moves:
            results = yield from fan_out(
                self.env,
                [self._warm_moves(nm, items) for nm, items in moves.items()],
                len(moves),
                name="scale_up",
            )
            for r in results:
                if r:
                    warmed += r[0]
                    peer_warmed += r[1]
        self.peer_warmed_chunks += peer_warmed
        return {
            "new_masters": [m.client.name for m in new_masters],
            "moved_chunks": moved,
            "warmed_chunks": warmed,
            "peer_warmed": peer_warmed,
            "membership_version": self.membership_version,
        }

    def _warm_moves(
        self, master: CacheMaster, items: Sequence[Tuple[str, CacheMaster]]
    ) -> Generator[Event, Any, Tuple[int, int]]:
        """One new master warming its stolen share from its donors."""
        warmed = peer_warmed = 0
        for encoded_cid, donor in items:
            if not master.node.alive:
                break
            try:
                cached, from_peer = yield from master.admit_from_peer(
                    donor, encoded_cid
                )
            except (NodeDownError, CachePeerDownError, DieselError):
                continue
            if cached:
                warmed += 1
                peer_warmed += bool(from_peer)
        return warmed, peer_warmed

    def scale_down(
        self, nodes: Sequence[Any], drain: bool = True
    ) -> Generator[Event, Any, dict]:
        """Shrink the task's membership live, draining owned chunks.

        ``nodes`` are :class:`~repro.cluster.node.Node`\\ s or node
        names.  Each departing master's chunks are re-homed to a
        successor — a survivor already holding a replica when one exists
        (the locality policy's replica machinery), else dealt
        round-robin — and with ``drain`` the successor pulls each chunk
        *from the departing master* before ownership flips, so at every
        instant the chunk is resident and owned somewhere: reads keep
        resolving against the old owner until the copy lands, then
        against the new one.  Zero lost chunks, zero failed reads, no
        cold restart.  Departing clients leave the mesh afterwards.

        Returns a summary dict including ``lost_chunks`` (chunks whose
        successor could not admit them, e.g. out of memory — those fall
        back to server reads, they are not errors).
        """
        if not self._registered:
            raise DieselError("task cache not registered")
        names = {n.name if isinstance(n, Node) else str(n) for n in nodes}
        if not names:
            raise DieselError("scale_down needs at least one node")
        departing = [self.masters[n] for n in sorted(names) if n in self.masters]
        survivors = [
            self.masters[k] for k in sorted(self.masters) if k not in names
        ]
        if departing and not survivors:
            raise DieselError("scale_down would remove every cache master")
        # Successor plan: replica-holding survivor first, else round-robin.
        plan: Dict[CacheMaster, List[Tuple[str, CacheMaster]]] = {}
        rr = 0
        for m in departing:
            for encoded_cid in m.assigned:
                succ = next(
                    (s for s in survivors if s.has_chunk(encoded_cid)), None
                )
                if succ is None:
                    succ = survivors[rr % len(survivors)]
                    rr += 1
                plan.setdefault(succ, []).append((encoded_cid, m))
        drained = peer_drained = lost = 0
        if plan:
            if drain:
                results = yield from fan_out(
                    self.env,
                    [
                        self._drain_into(succ, items)
                        for succ, items in plan.items()
                    ],
                    len(plan),
                    name="scale_down",
                )
                for r in results:
                    if r:
                        drained += r[0]
                        peer_drained += r[1]
                        lost += r[2]
            else:
                # No drain: flip ownership only; chunks go server-resident.
                for succ, items in plan.items():
                    for encoded_cid, _donor in items:
                        self._owner_of[encoded_cid] = succ
                        succ.assigned.append(encoded_cid)
        # Remove the departing masters and clients from the mesh.
        for m in departing:
            m.assigned = []
            m.drop_all()
            del self.masters[m.node.name]
            self.connections.drop_endpoint(m.client.name)
            self._breakers.pop(m.client.name, None)
        master_names = {m.client.name for m in departing}
        for c in self.clients:
            if c.node.name in names and c.name not in master_names:
                self.connections.drop_endpoint(c.name)
        self.clients = [c for c in self.clients if c.node.name not in names]
        if not self.clients:
            raise DieselError("scale_down removed every client")
        self.scale_down_count += 1
        self.drained_chunks += drained
        self.membership_version += 1
        self._notify_membership("scale_down", sorted(names))
        return {
            "removed_masters": sorted(master_names),
            "drained_chunks": drained,
            "peer_drained": peer_drained,
            "lost_chunks": lost,
            "membership_version": self.membership_version,
        }

    def _drain_into(
        self, succ: CacheMaster, items: Sequence[Tuple[str, CacheMaster]]
    ) -> Generator[Event, Any, Tuple[int, int, int]]:
        """One successor draining chunks off a departing master.

        Ownership flips per chunk *after* the copy lands, so reads in
        flight keep resolving against whichever master currently holds
        the chunk.
        """
        drained = peer_drained = lost = 0
        for encoded_cid, donor in items:
            cached, from_peer = False, False
            try:
                cached, from_peer = yield from succ.admit_from_peer(
                    donor, encoded_cid
                )
            except (NodeDownError, CachePeerDownError, DieselError):
                cached = False
            self._owner_of[encoded_cid] = succ
            succ.assigned.append(encoded_cid)
            if cached:
                drained += 1
                peer_drained += bool(from_peer)
            else:
                lost += 1
        return drained, peer_drained, lost
