"""Task-grained distributed cache (paper §4.2, Fig 7).

Each DLT task caches *its own* dataset across *its own* worker nodes:

* every I/O process spawns a DIESEL client instance with a rank;
* the lowest-ranked client on each physical node is elected **master**;
  only masters hold cache partitions, so the connection mesh is
  p×(n−1) (clients × masters) instead of n×(n−1) (full client mesh);
* chunks are partitioned across masters deterministically (round-robin
  over the sorted chunk list), and any client reaches any file in **one
  hop** via the owning master;
* cache policies (§4.2): ``oneshot`` prefetches the full partition in the
  background right after registration; ``on-demand`` pulls a chunk the
  first time one of its files misses;
* on a miss the *file* read falls through to the DIESEL server directly
  (read flow, Fig 4) — the cache never blocks the training loop;
* a node failure kills only this task's cache (containment); recovery
  re-partitions over the survivors and re-streams whole chunks, which is
  why Fig 11b's DIESEL reload is so much faster than a per-file cache
  fill.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.calibration import Calibration, DEFAULT
from repro.core.meta import FileRecord
from repro.core.server import DieselServer
from repro.core.chunk import Chunk
from repro.errors import (
    CachePeerDownError,
    CircuitOpenError,
    DeadlineExceededError,
    DieselError,
    NodeDownError,
)
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.rpc.connections import ConnectionTable
from repro.rpc.endpoint import RpcEndpoint
from repro.sim.engine import Environment, Event, fan_out


@dataclass(frozen=True)
class CacheClient:
    """One DIESEL client instance participating in the task."""

    name: str
    node: Node
    rank: int


@dataclass(slots=True)
class CacheMasterStats:
    """Per-master cache counters (the bench-reporting seam)."""

    hits: int = 0
    misses: int = 0
    chunks_loaded: int = 0
    bytes_cached: int = 0
    #: Chunks left uncached because the node's memory budget ran out.
    skipped_no_memory: int = 0
    #: Most chunk pulls ever concurrently in flight on this master
    #: (stays 0/1 with ``warmup_fanout`` at its serial default).
    pull_inflight_hwm: int = 0

    def to_dict(self) -> Dict[str, int]:
        """All counters as ``{name: value}``, derived from the dataclass
        fields so a new counter can never silently drop out of rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CacheMaster:
    """The master client on one node: holds a chunk partition in memory."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        client: CacheClient,
        server: DieselServer,
        dataset: str,
        calibration: Calibration,
    ) -> None:
        self.env = env
        self.client = client
        self.node = client.node
        self.server = server
        self.dataset = dataset
        self.cal = calibration
        self.assigned: List[str] = []  # encoded chunk ids
        self._chunks: Dict[str, Chunk] = {}
        self._chunk_bytes: Dict[str, int] = {}
        self.stats = CacheMasterStats()
        #: Attached observability recorder (propagated by TaskCache).
        self.recorder = None
        self.endpoint = RpcEndpoint(
            env,
            fabric,
            client.node,
            f"cache:{client.name}",
            handler=self._handle,
            service_s=calibration.diesel.peer_fetch_overhead_s,
            workers=16,
        )

    @property
    def up(self) -> bool:
        return self.endpoint.up

    def has_chunk(self, encoded_cid: str) -> bool:
        return encoded_cid in self._chunks

    @property
    def cached_chunk_count(self) -> int:
        return len(self._chunks)

    def _handle(self, method: str, *args: Any) -> Any:
        if method == "get_file":
            encoded_cid, path = args
            chunk = self._chunks.get(encoded_cid)
            if chunk is None or path not in chunk:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return chunk.payload(path, verify=False)
        if method == "has_chunk":
            return args[0] in self._chunks
        if method == "pull_chunk":
            return self._pull_chunk(args[0])
        raise DieselError(f"unknown cache method {method!r}")

    def _pull_chunk(self, encoded_cid: str) -> Generator[Event, Any, bool]:
        """Fetch one assigned chunk from the server into memory.

        The cache aggregates the node's *free* memory (§4.2): a chunk is
        only cached if the node's memory budget covers it; otherwise it
        stays server-resident (reads for it fall through, Fig 4) and the
        skip is counted.  Returns whether the chunk is now cached.
        """
        if encoded_cid in self._chunks:
            return True
        blob = yield from self.server.call(
            self.node,
            "get_chunk",
            self.dataset,
            encoded_cid,
            response_bytes=None,  # sized from the returned bytes
        )
        if self.node.memory.level < len(blob):
            self.stats.skipped_no_memory += 1
            return False
        yield self.node.memory.get(len(blob))
        chunk = Chunk.decode(blob)
        self._chunks[encoded_cid] = chunk
        self._chunk_bytes[encoded_cid] = len(blob)
        self.stats.chunks_loaded += 1
        self.stats.bytes_cached += len(blob)
        return True

    def _note_pull_inflight(self, n: int) -> None:
        if n > self.stats.pull_inflight_hwm:
            self.stats.pull_inflight_hwm = n

    def _pull_one(self, encoded_cid: str) -> Generator[Event, Any, bool]:
        """One fan-out worker: pull a chunk unless the node died."""
        if not self.node.alive:
            return False
        cached = yield from self._pull_chunk(encoded_cid)
        return cached

    def prefetch_all(self, fanout: int = 1) -> Generator[Event, Any, int]:
        """Oneshot policy: stream every assigned chunk from the server.

        ``fanout`` bounds how many pulls this master keeps in flight
        (``DieselConfig.warmup_fanout``); 1 is the legacy serial stream.
        Returns the number of chunks actually cached (memory-skipped
        chunks do not count).
        """
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        if fanout <= 1:
            loaded = 0
            for encoded_cid in self.assigned:
                if not self.node.alive:
                    break
                cached = yield from self._pull_chunk(encoded_cid)
                loaded += bool(cached)
        else:
            results = yield from fan_out(
                self.env,
                [self._pull_one(cid) for cid in self.assigned],
                fanout,
                name=f"warm:{self.client.name}",
                watermark=self._note_pull_inflight,
            )
            loaded = sum(bool(r) for r in results)
        if rec is not None:
            rec.record("warmup", "master", self.env.now - t0,
                       actor=self.client.name, chunks=loaded)
        return loaded

    def reload_missing(self, fanout: int = 1) -> Generator[Event, Any, int]:
        """Recovery: pull every assigned chunk not yet resident.

        Same bounded fan-out discipline as :meth:`prefetch_all`; returns
        the number of chunks actually cached.
        """
        rec = self.recorder
        t0 = self.env.now if rec is not None else 0.0
        missing = [cid for cid in self.assigned if not self.has_chunk(cid)]
        if fanout <= 1:
            reloaded = 0
            for encoded_cid in missing:
                cached = yield from self._pull_chunk(encoded_cid)
                reloaded += bool(cached)
        else:
            results = yield from fan_out(
                self.env,
                [self._pull_one(cid) for cid in missing],
                fanout,
                name=f"recover:{self.client.name}",
                watermark=self._note_pull_inflight,
            )
            reloaded = sum(bool(r) for r in results)
        if rec is not None:
            rec.record("recover", "master", self.env.now - t0,
                       actor=self.client.name, chunks=reloaded)
        return reloaded

    def drop_all(self) -> None:
        """Release all cached chunks and return their memory."""
        freed = sum(self._chunk_bytes.values())
        if freed and self.node.alive:
            self.node.memory.put(freed)
        self._chunks.clear()
        self._chunk_bytes.clear()


class TaskCache:
    """The per-task distributed cache spanning all the task's clients."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        server: DieselServer,
        dataset: str,
        clients: Sequence[CacheClient],
        policy: str = "oneshot",
        calibration: Calibration = DEFAULT,
        fallback_to_server: bool = True,
        warmup_fanout: int = 1,
    ) -> None:
        if not clients:
            raise DieselError("a task cache needs at least one client")
        if policy not in ("oneshot", "on-demand"):
            raise DieselError(f"unknown cache policy {policy!r}")
        if warmup_fanout < 1:
            raise DieselError("warmup_fanout must be >= 1")
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise DieselError("client names must be unique")
        self.env = env
        self.fabric = fabric
        self.server = server
        self.dataset = dataset
        self.policy = policy
        self.cal = calibration
        self.fallback_to_server = fallback_to_server
        #: Per-master chunk-pull concurrency for warmup and recovery
        #: (``DieselConfig.warmup_fanout``); masters always run
        #: concurrently with each other, this bounds each stream.
        self.warmup_fanout = warmup_fanout
        self.clients = list(clients)
        self.connections = ConnectionTable()
        self.masters: Dict[str, CacheMaster] = {}  # node name -> master
        self._owner_of: Dict[str, CacheMaster] = {}  # encoded cid -> master
        self._registered = False
        self._prefetch_procs: list = []
        self._recorder = None
        #: Fault-tolerance hooks (all optional; None = legacy behaviour).
        #: ``failure_listener.report_failure(master)`` is called when an
        #: in-flight peer call fails — the CacheSupervisor wires itself
        #: in here so detection does not wait for the next heartbeat.
        self.failure_listener = None
        self._retry_policy = None
        self._breakers: Dict[str, Any] = {}  # master client name -> breaker
        self._breaker_threshold = 5
        self._breaker_reset_s = 1.0
        self._rng = None
        #: Reads served by the server because the owning peer failed
        #: mid-call or its breaker was open (Fig 4 fall-through).
        self.degraded_reads = 0
        #: On-demand background pulls dropped because the master died.
        self.dropped_pulls = 0
        #: Which layer served the most recent read_file — published for
        #: the client's span attribution (only updated while a recorder
        #: is attached, so the bare hot path stays untouched).
        self.last_resolution = "task_cache"

    @property
    def recorder(self):
        """Attached observability recorder (None = disabled)."""
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        """Propagate the recorder to every cache master and its endpoint."""
        self._recorder = value
        for m in self.masters.values():
            m.recorder = value
            m.endpoint.recorder = value

    # ------------------------------------------------------- fault tolerance
    def configure_ft(self, config) -> None:
        """Enable retry + per-master circuit breakers on the peer path.

        ``config`` is a :class:`~repro.core.config.DieselConfig`; its
        ``rpc_retries`` / ``rpc_backoff_base_s`` / ``rpc_deadline_s``
        fields shape the retry policy and ``breaker_threshold`` /
        ``breaker_reset_s`` the per-peer breakers.  Without this call
        the data path behaves exactly as before (single attempt, no
        breaker) except that mid-call peer death degrades to the server
        instead of erroring.
        """
        import random

        from repro.ft.retry import RetryPolicy

        self._retry_policy = RetryPolicy.from_config(config)
        self._breaker_threshold = config.breaker_threshold
        self._breaker_reset_s = config.breaker_reset_s
        self._breakers.clear()
        # Seeded: retry jitter must not vary run to run.
        self._rng = random.Random(0xD1E5E1)

    def _breaker_for(self, master: CacheMaster):
        breaker = self._breakers.get(master.client.name)
        if breaker is None:
            from repro.ft.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                self.env, self._breaker_threshold, self._breaker_reset_s,
                name=master.client.name,
            )
            self._breakers[master.client.name] = breaker
        return breaker

    def _note_peer_failure(self, master: CacheMaster) -> None:
        listener = self.failure_listener
        if listener is not None:
            listener.report_failure(master)
        rec = self._recorder
        if rec is not None:
            rec.count("ft_peer_failure", "task_cache")

    # ------------------------------------------------------------ lifecycle
    def register(self) -> Generator[Event, Any, dict]:
        """Register the task: elect masters, partition chunks, connect.

        Returns the server's registration summary.  Under the ``oneshot``
        policy, background prefetch processes are started (registration
        does not wait for them; see :meth:`wait_warm`).
        """
        if self._registered:
            raise DieselError("task cache already registered")
        # Any client can perform registration; use the global lowest rank.
        leader = min(self.clients, key=lambda c: (c.rank, c.name))
        summary = yield from self.server.call(
            leader.node, "register", self.dataset, leader.name
        )
        # Master election: lowest rank per physical node (§4.2).
        by_node: Dict[str, CacheClient] = {}
        for c in self.clients:
            cur = by_node.get(c.node.name)
            if cur is None or (c.rank, c.name) < (cur.rank, cur.name):
                by_node[c.node.name] = c
        for node_name in sorted(by_node):
            elected = by_node[node_name]
            master = CacheMaster(
                self.env, self.fabric, elected, self.server, self.dataset, self.cal
            )
            if self._recorder is not None:
                master.recorder = self._recorder
                master.endpoint.recorder = self._recorder
            self.masters[node_name] = master
        # Deterministic chunk partitioning: round-robin over sorted masters.
        master_list = [self.masters[k] for k in sorted(self.masters)]
        for i, encoded_cid in enumerate(summary["chunk_ids"]):
            owner = master_list[i % len(master_list)]
            owner.assigned.append(encoded_cid)
            self._owner_of[encoded_cid] = owner
        # Every client connects to every master: p×(n−1) connections.
        for c in self.clients:
            for m in master_list:
                self.connections.connect(c.name, m.client.name)
        if self.policy == "oneshot":
            for m in master_list:
                proc = self.env.process(
                    m.prefetch_all(self.warmup_fanout),
                    name=f"prefetch:{m.client.name}",
                )
                self._prefetch_procs.append(proc)
        self._registered = True
        return summary

    def wait_warm(self) -> Generator[Event, Any, int]:
        """Block until all oneshot prefetches finish; returns chunks loaded."""
        total = 0
        for proc in self._prefetch_procs:
            loaded = yield proc
            total += loaded
        return total

    # ------------------------------------------------------------ accounting
    def connection_count(self) -> int:
        return self.connections.count()

    def expected_connection_count(self) -> int:
        """The paper's p×(n−1) (self-connections excluded)."""
        p = len(self.masters)
        n = len(self.clients)
        return p * n - p  # each master's self-connection is not counted

    def cached_chunks(self) -> int:
        return sum(m.cached_chunk_count for m in self.masters.values())

    def cached_bytes(self) -> int:
        return sum(m.stats.bytes_cached for m in self.masters.values())

    def hit_ratio(self) -> float:
        hits = sum(m.stats.hits for m in self.masters.values())
        misses = sum(m.stats.misses for m in self.masters.values())
        total = hits + misses
        return hits / total if total else 0.0

    def owner_of(self, encoded_cid: str) -> CacheMaster:
        try:
            return self._owner_of[encoded_cid]
        except KeyError:
            raise DieselError(
                f"chunk {encoded_cid} is not part of this task's dataset"
            ) from None

    # ------------------------------------------------------------- data path
    def read_file(
        self, client: CacheClient, record: FileRecord
    ) -> Generator[Event, Any, bytes]:
        """Read one file through the cache (one-hop peer fetch).

        Miss and peer-failure behaviour follows Fig 4: the file read falls
        through to the DIESEL server; under ``on-demand`` the owning
        master pulls the chunk in the background so later reads hit.
        """
        if not self._registered:
            raise DieselError("task cache not registered")
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        encoded_cid = record.chunk_id.encode()
        master = self.owner_of(encoded_cid)
        payload = None
        peer_answered = False
        if master.up:
            try:
                if self._retry_policy is not None:
                    payload = yield from master.endpoint.call_with_retry(
                        self._retry_policy,
                        client.node,
                        "get_file",
                        encoded_cid,
                        record.path,
                        rng=self._rng,
                        breaker=self._breaker_for(master),
                        response_bytes=record.length,
                    )
                else:
                    payload = yield from master.endpoint.call(
                        client.node,
                        "get_file",
                        encoded_cid,
                        record.path,
                        response_bytes=record.length,
                    )
                peer_answered = True
            except CircuitOpenError as exc:
                # Known-bad peer: short-circuit straight to the server
                # without paying another attempt.
                self.degraded_reads += 1
                if not self.fallback_to_server:
                    raise CachePeerDownError(master.client.name) from exc
            except (NodeDownError, DeadlineExceededError) as exc:
                # Master died mid-call: degrade to the server path
                # (Fig 4 fall-through) and feed the detector now.
                self.degraded_reads += 1
                self._note_peer_failure(master)
                if not self.fallback_to_server:
                    raise CachePeerDownError(master.client.name) from exc
        else:
            # Peer already known down: this read degrades to the server;
            # telling the detector collapses detection latency to the
            # first read that noticed.
            self.degraded_reads += 1
            self._note_peer_failure(master)
            if not self.fallback_to_server:
                raise CachePeerDownError(master.client.name)
        if peer_answered:
            if payload is not None:
                if rec is not None:
                    self.last_resolution = "task_cache"
                    rec.record("cache_read", "task_cache",
                               self.env.now - t0, actor=client.name,
                               path=record.path)
                return payload
            if self.policy == "on-demand" and master.up:
                # Kick a background chunk pull; don't wait for it.
                self.env.process(
                    self._background_pull(client, master, encoded_cid),
                    name=f"pull:{encoded_cid[:8]}",
                )
        payload = yield from self.server.call(
            client.node,
            "get_file",
            self.dataset,
            record.path,
            response_bytes=record.length,
        )
        if rec is not None:
            self.last_resolution = "server"
            rec.record("cache_read", "server", self.env.now - t0,
                       actor=client.name, path=record.path)
        return payload

    def _background_pull(
        self, client: CacheClient, master: CacheMaster, encoded_cid: str
    ) -> Generator[Event, Any, None]:
        """On-demand fill, decoupled from the read that triggered it.

        The read already fell through to the server, so this pull is
        pure opportunism: if the master (or the server behind it) dies
        mid-pull, log-and-drop — an orphaned failure must never
        propagate into the engine or stall the training loop.
        """
        try:
            yield from master.endpoint.call(
                client.node, "pull_chunk", encoded_cid
            )
        except (NodeDownError, CachePeerDownError):
            self.dropped_pulls += 1
            self._note_peer_failure(master)
            rec = self._recorder
            if rec is not None:
                rec.count("ft_dropped_pull", "task_cache")

    # -------------------------------------------------------------- recovery
    def dead_masters(self) -> list[CacheMaster]:
        return [m for m in self.masters.values() if not m.up]

    def recover(
        self, fanout: Optional[int] = None
    ) -> Generator[Event, Any, int]:
        """Re-partition dead masters' chunks over survivors and reload them.

        Chunk-granular recovery: survivors stream whole chunks from the
        object store, exploiting sequential bandwidth (Fig 11b).
        ``fanout`` (default: this cache's ``warmup_fanout``) bounds each
        survivor's pull concurrency; when > 1 all survivors re-stream
        concurrently, so recovery time scales with the *largest
        partition*, not the orphaned total.  Returns the number of
        chunks re-loaded.
        """
        limit = self.warmup_fanout if fanout is None else fanout
        dead = self.dead_masters()
        if not dead:
            return 0
        survivors = [m for m in self.masters.values() if m.up]
        if not survivors:
            raise CachePeerDownError("all cache masters are down")
        orphaned: list[str] = []
        for m in dead:
            orphaned.extend(m.assigned)
            m.assigned = []
            del self.masters[m.node.name]
            self.connections.drop_endpoint(m.client.name)
        survivors.sort(key=lambda m: m.node.name)
        for i, encoded_cid in enumerate(orphaned):
            owner = survivors[i % len(survivors)]
            owner.assigned.append(encoded_cid)
            self._owner_of[encoded_cid] = owner
        rec = self._recorder
        t0 = self.env.now if rec is not None else 0.0
        if limit <= 1:
            # Legacy serial re-stream: survivor after survivor.
            reloaded = 0
            for m in survivors:
                for encoded_cid in m.assigned:
                    if not m.has_chunk(encoded_cid):
                        cached = yield from m._pull_chunk(encoded_cid)
                        reloaded += bool(cached)
        else:
            per_master = yield from fan_out(
                self.env,
                [m.reload_missing(limit) for m in survivors],
                len(survivors),
                name="recover",
            )
            reloaded = sum(per_master)
        if rec is not None:
            rec.record("recover", "total", self.env.now - t0,
                       chunks=reloaded, survivors=len(survivors))
        return reloaded
