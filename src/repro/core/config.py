"""System configuration + the ETCD-like config store (Fig 2).

The paper stores system configuration in an ETCD server; DIESEL servers
and clients read it at startup.  :class:`ConfigStore` is a minimal
strongly-consistent key-value config service with watch callbacks;
:class:`DieselConfig` is the typed bundle the DIESEL components consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.core.chunk import DEFAULT_CHUNK_SIZE


@dataclass(frozen=True)
class DieselConfig:
    """Tunables for a DIESEL deployment."""

    #: Target chunk payload size; the paper mandates ≥ 4 MB.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Task-grained cache policy: 'oneshot' prefetches at registration;
    #: 'on-demand' fills on first miss (§4.2 "Cache Policies").
    cache_policy: str = "oneshot"
    #: Chunk-placement policy across the task's cache masters: 'hash'
    #: round-robins chunks over the ring (the paper's consistent-hash
    #: spread — every node owns ~1/p, so (p−1)/p of reads pay a network
    #: hop); 'locality' assigns each worker's shuffle-group chunks to
    #: the master co-located with that worker, turning steady-state hits
    #: into node-local memory reads (Hoard/FanStore layout).
    cache_placement: str = "hash"
    #: Fraction of a node's free memory the locality partition may
    #: claim before further chunks spill to the hash ring.  Only
    #: consulted under ``cache_placement='locality'``.
    locality_spill_ratio: float = 0.9
    #: Remote reads of one chunk from one node before the cache
    #: replicates it onto that node's local master (read-skew
    #: mitigation).  0 disables hot-chunk replication.
    hot_chunk_threshold: int = 0
    #: Route task-cache admissions through the node-level shared chunk
    #: tier (``repro.core.shared_cache``): chunks are reference-counted
    #: across tasks, a second task warms from the first task's resident
    #: chunks, eviction only reclaims refcount-0 chunks.  False keeps
    #: the legacy task-private cache.
    shared_cache: bool = False
    #: Per-node resident-byte quota charged to this task's tenant at
    #: the shared tier (0 = unlimited).  Only consulted when
    #: ``shared_cache`` is on.
    tenant_quota_bytes: int = 0
    #: Shared-tier admission priority: 'interactive' admissions may
    #: evict any refcount-0 chunk to make room, 'batch' admissions may
    #: not reclaim the interactive warm pool.
    qos_class: str = "batch"
    #: Chunk-residency store backing the task cache and the shared
    #: tier: 'ram' keeps every resident chunk in node memory (legacy —
    #: chunks that do not fit stay server-resident); 'tiered' adds a
    #: simulated node-local NVMe tier that absorbs the overflow, demotes
    #: cold refcount-0 chunks under memory pressure and promotes them
    #: back on access (``repro.core.chunk_store``).
    cache_store: str = "ram"
    #: Disk-tier capacity in stored bytes per node (0 = unbounded).
    #: Only consulted when ``cache_store='tiered'``.
    disk_tier_bytes: int = 0
    #: Fixed per-operation latency of the simulated NVMe disk tier.
    disk_latency_s: float = 8e-05
    #: Streaming bandwidth of the simulated disk tier (bytes/s).
    disk_bandwidth_bps: float = 2147483648.0
    #: Transparently compress chunks written to the disk tier
    #: (FanStore-style): pays a modeled compress/decompress CPU cost in
    #: exchange for capacity and disk-bandwidth savings; the per-chunk
    #: ratio is seeded deterministically from the chunk key.
    chunk_compression: bool = False
    #: Chunk-wise shuffle group size (chunks per group, §4.3/Fig 13).
    shuffle_group_size: int = 100
    #: Chunks kept in flight ahead of the shuffle-mode consumer (§4.3's
    #: "sequential chunk reads hidden behind compute").  0 disables the
    #: pipeline: every group-cache miss stalls for a full chunk fetch.
    prefetch_depth: int = 0
    #: Enable the server-side HDD→SSD cache tier (Fig 4).
    server_cache: bool = True
    #: DIESEL clients spawned per FUSE mount (§5 multi-client FUSE loop).
    fuse_clients: int = 4
    #: Sealed chunks DL_put keeps in flight across round-robin servers
    #: (§4.1.1's write overlap, the Fig 9 discipline).  1 = ship each
    #: chunk synchronously before packing the next (legacy serial path).
    ingest_pipeline_depth: int = 1
    #: Concurrent chunk/file fetches a batched read (``get_many``)
    #: scatters across servers and cache masters.  1 = resolve the
    #: batch's chunk groups serially (legacy).
    read_fanout: int = 1
    #: Concurrent chunk pulls per cache master during oneshot warmup and
    #: recovery; all masters always stream concurrently, this bounds the
    #: per-master overlap (Fig 11b).  1 = serial per-master stream.
    warmup_fanout: int = 1
    #: Chunk pulls admitted per vectorized server call during oneshot
    #: warmup and recovery (``DieselServer.call_batch``): one scheduler
    #: entry per batch instead of per chunk.  1 = one RPC per chunk
    #: (legacy per-request admission).
    admission_batch: int = 1
    #: Discrete-event scheduler backing the simulation Environment:
    #: 'calendar' (calendar-queue/timer-wheel, near-O(1) under the
    #: fabric's bimodal delays) or 'heap' (flat binary heap baseline
    #: kept for A/B testing).  Same-tick FIFO order is identical under
    #: both.
    sim_scheduler: str = "calendar"
    #: Failure-detector probe period (seconds of simulated time).  Each
    #: watched peer is probed once per interval.
    heartbeat_interval_s: float = 0.05
    #: How long a peer may go unreachable before the detector declares
    #: it dead (suspect in the meantime).  Must exceed the heartbeat
    #: interval, or a single missed probe would be fatal.
    failure_timeout_s: float = 0.25
    #: Extra RPC attempts after the first failure (0 = fail on first
    #: error, the legacy behaviour).
    rpc_retries: int = 2
    #: First-retry backoff delay; doubles per attempt (with jitter).
    rpc_backoff_base_s: float = 0.002
    #: Per-attempt deadline; an attempt still in flight after this long
    #: is abandoned and counted as a failure.  0 disables deadlines.
    rpc_deadline_s: float = 0.0
    #: Consecutive failures against one peer that trip its circuit
    #: breaker (subsequent calls fast-fail to the degraded path).
    breaker_threshold: int = 5
    #: How long a tripped breaker stays open before a half-open probe
    #: call is allowed through.
    breaker_reset_s: float = 1.0
    #: Hedge remote cache reads: once a peer call outlives its
    #: calibrated p95 delay, fire a backup request to a replica (or the
    #: backend) and take whichever answers first, cancelling the loser
    #: (straggler mitigation; "The Tail at Scale").
    hedge_enabled: bool = False
    #: Fixed hedge delay in seconds.  0 calibrates the delay per peer
    #: from its EWMA latency tracker (mean + 4·deviation, ≈ p95).
    hedge_delay_s: float = 0.0
    #: EWMA smoothing factor for the per-peer latency tracker feeding
    #: hedge-delay calibration and replica steering.
    hedge_ewma_alpha: float = 0.2
    #: Failure-detector probe de-synchronization: each probe round
    #: sleeps the heartbeat interval scaled by a seeded uniform factor
    #: in ``[1 - jitter, 1 + jitter]`` so large fleets do not probe in
    #: lockstep bursts.  0 keeps the exact fixed-interval schedule.
    heartbeat_jitter: float = 0.1
    #: Mutation-journal entries retained per dataset (the delta metadata
    #: plane, ``repro.core.meta_journal``): a client whose snapshot is at
    #: most this many versions old refreshes by applying the delta
    #: instead of a full O(dataset) snapshot reload; older clients fall
    #: back to the full path.  0 disables journaling entirely.
    meta_journal_horizon: int = 256
    #: Page size (keys per round trip) for cursor-paginated prefix scans:
    #: ``ls -lR``, snapshot builds and registry listings stream pages of
    #: this size instead of materializing the whole prefix range.
    pscan_page_size: int = 1024
    #: Registry shards the dataset namespace is spread over
    #: (``repro.core.registry``); each shard is one independently
    #: pageable key range.  Rebalance the registry when changing this on
    #: a live deployment.
    registry_shards: int = 16

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.cache_policy not in ("oneshot", "on-demand"):
            raise ValueError(f"unknown cache policy: {self.cache_policy!r}")
        if self.cache_placement not in ("hash", "locality"):
            raise ValueError(
                f"unknown cache placement: {self.cache_placement!r}"
            )
        if not 0.0 < self.locality_spill_ratio <= 1.0:
            raise ValueError("locality_spill_ratio must be in (0, 1]")
        if self.hot_chunk_threshold < 0:
            raise ValueError("hot_chunk_threshold must be >= 0")
        if self.tenant_quota_bytes < 0:
            raise ValueError("tenant_quota_bytes must be >= 0")
        if self.qos_class not in ("interactive", "batch"):
            raise ValueError(f"unknown QoS class: {self.qos_class!r}")
        if self.cache_store not in ("ram", "tiered"):
            raise ValueError(f"unknown cache store: {self.cache_store!r}")
        if self.disk_tier_bytes < 0:
            raise ValueError("disk_tier_bytes must be >= 0")
        if self.disk_latency_s < 0:
            raise ValueError("disk_latency_s must be >= 0")
        if self.disk_bandwidth_bps <= 0:
            raise ValueError("disk_bandwidth_bps must be positive")
        if self.shuffle_group_size < 1:
            raise ValueError("shuffle_group_size must be >= 1")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.fuse_clients < 1:
            raise ValueError("fuse_clients must be >= 1")
        if self.ingest_pipeline_depth < 1:
            raise ValueError("ingest_pipeline_depth must be >= 1")
        if self.read_fanout < 1:
            raise ValueError("read_fanout must be >= 1")
        if self.warmup_fanout < 1:
            raise ValueError("warmup_fanout must be >= 1")
        if self.admission_batch < 1:
            raise ValueError("admission_batch must be >= 1")
        if self.sim_scheduler not in ("calendar", "heap"):
            raise ValueError(f"unknown sim scheduler: {self.sim_scheduler!r}")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.failure_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "failure_timeout_s must exceed heartbeat_interval_s"
            )
        if self.rpc_retries < 0:
            raise ValueError("rpc_retries must be >= 0")
        if self.rpc_backoff_base_s <= 0:
            raise ValueError("rpc_backoff_base_s must be positive")
        if self.rpc_deadline_s < 0:
            raise ValueError("rpc_deadline_s must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset_s <= 0:
            raise ValueError("breaker_reset_s must be positive")
        if self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be >= 0")
        if not 0.0 < self.hedge_ewma_alpha <= 1.0:
            raise ValueError("hedge_ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.heartbeat_jitter < 1.0:
            raise ValueError("heartbeat_jitter must be in [0, 1)")
        if self.meta_journal_horizon < 0:
            raise ValueError("meta_journal_horizon must be >= 0")
        if self.pscan_page_size < 1:
            raise ValueError("pscan_page_size must be >= 1")
        if self.registry_shards < 1:
            raise ValueError("registry_shards must be >= 1")


class ConfigStore:
    """A tiny ETCD stand-in: versioned keys + watch callbacks."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self._watchers: Dict[str, List[Callable[[str, Any], None]]] = {}

    def put(self, key: str, value: Any) -> int:
        """Set a key; returns its new version; fires watchers."""
        self._data[key] = value
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        for cb in self._watchers.get(key, ()):
            cb(key, value)
        return version

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def version(self, key: str) -> int:
        return self._versions.get(key, 0)

    def delete(self, key: str) -> bool:
        if key not in self._data:
            return False
        del self._data[key]
        self._versions[key] = self._versions.get(key, 0) + 1
        for cb in self._watchers.get(key, ()):
            cb(key, None)
        return True

    def watch(self, key: str, callback: Callable[[str, Any], None]) -> None:
        self._watchers.setdefault(key, []).append(callback)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))
