"""Flat object store over a storage device."""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import ObjectNotFoundError
from repro.cluster.devices import Device
from repro.sim.engine import Event


class ObjectStore:
    """A flat namespace of immutable-ish byte objects on one device.

    Keys list in sorted order — combined with DIESEL's order-preserving
    chunk-ID encoding, ``list_keys()`` returns chunks in written order,
    which metadata recovery depends on (§4.1.2).
    """

    def __init__(self, device: Device, name: str = "objectstore") -> None:
        self.device = device
        self.name = name
        self._objects: dict[str, bytes] = {}
        self._sorted: Optional[list[str]] = None

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def size_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())

    # -- simulated operations ---------------------------------------------
    def put(self, key: str, data: bytes) -> Generator[Event, Any, None]:
        """Write an object (charges one device write of ``len(data)``)."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"object data must be bytes, got {type(data).__name__}")
        yield from self.device.write(len(data))
        if key not in self._objects:
            self._sorted = None
        self._objects[key] = bytes(data)

    def put_journaled(self, key: str, data: bytes):
        """Write-back put: the object becomes visible immediately (the
        replicated in-memory journal acks the write) and the device flush
        runs in the background.

        Returns the flush *generator*; the caller decides whether to run
        it as a background process (normal ingest) or drive it inline
        (synchronous durability).  The device stays busy during the
        flush, so concurrent reads still feel the write load.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"object data must be bytes, got {type(data).__name__}")
        if key not in self._objects:
            self._sorted = None
        self._objects[key] = bytes(data)
        return self.device.write(len(data))

    def get(self, key: str) -> Generator[Event, Any, bytes]:
        """Read a whole object."""
        data = self._peek(key)
        yield from self.device.read(len(data))
        return data

    def get_range(
        self, key: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """Read ``length`` bytes at ``offset`` (charges only that range)."""
        data = self._peek(key)
        if offset < 0 or length < 0 or offset + length > len(data):
            raise ValueError(
                f"range [{offset}, {offset + length}) outside object of "
                f"{len(data)} bytes"
            )
        yield from self.device.read(length)
        return data[offset : offset + length]

    def delete(self, key: str) -> Generator[Event, Any, None]:
        self._peek(key)
        yield from self.device.write(0)  # metadata update
        del self._objects[key]
        self._sorted = None

    # -- zero-cost inspection ----------------------------------------------
    def _peek(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(key) from None

    def peek(self, key: str) -> bytes:
        """Read object bytes without charging simulated time (tests/tools)."""
        return self._peek(key)

    def patch(self, key: str, data: bytes) -> None:
        """Replace an object's bytes without charging device time.

        For small in-place header updates whose cost the caller charges
        explicitly (e.g. tombstone-bitmap patches on delete).
        """
        self._peek(key)
        self._objects[key] = bytes(data)

    def object_size(self, key: str) -> int:
        return len(self._peek(key))

    def list_keys(self, after: Optional[str] = None) -> list[str]:
        """All keys in sorted order, optionally strictly after ``after``."""
        if self._sorted is None:
            self._sorted = sorted(self._objects)
        if after is None:
            return list(self._sorted)
        import bisect

        idx = bisect.bisect_right(self._sorted, after)
        return self._sorted[idx:]

    def load(self, items: Iterable[tuple[str, bytes]]) -> None:
        """Bulk-populate without simulated cost (fixture setup)."""
        for k, v in items:
            self._objects[k] = bytes(v)
        self._sorted = None
