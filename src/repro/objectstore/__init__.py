"""Chunk object storage (the Ceph/Lustre-backed substrate of Fig 2).

DIESEL stores data chunks in a shared object store keyed by printable
chunk IDs.  :class:`ObjectStore` really holds the bytes and charges
device time; :class:`TieredStore` adds the server-side SSD cache in front
of an HDD base tier (the "fast object-storage" path of Fig 4).
"""

from repro.objectstore.store import ObjectStore
from repro.objectstore.tiered import TieredStore

__all__ = ["ObjectStore", "TieredStore"]
