"""HDD base tier + SSD cache tier (the DIESEL server cache, Fig 4).

Reads check the SSD tier first; on a miss the HDD serves the read and the
chunk is promoted to SSD (evicting least-recently-used chunks when the
SSD budget is exceeded) so subsequent epochs hit the fast tier — the
"server cache" box in the paper's read flow.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator, Optional

from repro.errors import ObjectNotFoundError
from repro.cluster.devices import Device
from repro.sim.engine import Event


class TieredStats:
    __slots__ = ("ssd_hits", "ssd_misses", "promotions", "evictions")

    def __init__(self) -> None:
        self.ssd_hits = 0
        self.ssd_misses = 0
        self.promotions = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        total = self.ssd_hits + self.ssd_misses
        return self.ssd_hits / total if total else 0.0


class TieredStore:
    """An object store facade over an SSD cache and an HDD base."""

    def __init__(
        self,
        ssd: Device,
        hdd: Device,
        ssd_capacity_bytes: float = 1 * 2**40,
        promote_on_miss: bool = True,
    ) -> None:
        if ssd_capacity_bytes <= 0:
            raise ValueError("ssd capacity must be positive")
        self.ssd = ssd
        self.hdd = hdd
        self.ssd_capacity_bytes = ssd_capacity_bytes
        self.promote_on_miss = promote_on_miss
        self._base: dict[str, bytes] = {}
        #: LRU of keys resident on the SSD tier (value = size).
        self._ssd_resident: "OrderedDict[str, int]" = OrderedDict()
        self._ssd_used = 0
        self.stats = TieredStats()

    def __contains__(self, key: str) -> bool:
        return key in self._base

    def __len__(self) -> int:
        return len(self._base)

    def in_ssd(self, key: str) -> bool:
        return key in self._ssd_resident

    def _peek(self, key: str) -> bytes:
        try:
            return self._base[key]
        except KeyError:
            raise ObjectNotFoundError(key) from None

    def peek(self, key: str) -> bytes:
        return self._peek(key)

    def put(self, key: str, data: bytes) -> Generator[Event, Any, None]:
        """Write to the base tier (writes go to HDD; cache fills on read)."""
        yield from self.hdd.write(len(data))
        self._base[key] = bytes(data)

    def put_journaled(self, key: str, data: bytes):
        """Write-back put (see :meth:`ObjectStore.put_journaled`)."""
        self._base[key] = bytes(data)
        return self.hdd.write(len(data))

    def patch(self, key: str, data: bytes) -> None:
        """In-place replace without device charge (see ObjectStore.patch)."""
        self._peek(key)
        self._base[key] = bytes(data)
        if key in self._ssd_resident:
            # Keep the cached copy coherent with the base tier.
            self._ssd_resident[key] = len(data)

    def _evict_to_fit(self, need: int) -> None:
        while self._ssd_used + need > self.ssd_capacity_bytes and self._ssd_resident:
            _, size = self._ssd_resident.popitem(last=False)
            self._ssd_used -= size
            self.stats.evictions += 1

    def _promote(self, key: str, size: int) -> Generator[Event, Any, None]:
        if size > self.ssd_capacity_bytes:
            return  # object larger than the whole cache: never promote
        self._evict_to_fit(size)
        yield from self.ssd.write(size)
        self._ssd_resident[key] = size
        self._ssd_used += size
        self.stats.promotions += 1

    def get(self, key: str) -> Generator[Event, Any, bytes]:
        """Read an object through the tier hierarchy."""
        data = self._peek(key)
        if key in self._ssd_resident:
            self._ssd_resident.move_to_end(key)
            self.stats.ssd_hits += 1
            yield from self.ssd.read(len(data))
            return data
        self.stats.ssd_misses += 1
        yield from self.hdd.read(len(data))
        if self.promote_on_miss:
            yield from self._promote(key, len(data))
        return data

    def get_range(
        self, key: str, offset: int, length: int
    ) -> Generator[Event, Any, bytes]:
        """Range read through the tiers.

        A miss promotes the *whole* object (Fig 4: "if a cache miss
        occurs on the server-side, the server will start to cache the
        dataset"), so subsequent small reads of the same chunk hit SSD.
        """
        data = self._peek(key)
        if offset < 0 or length < 0 or offset + length > len(data):
            raise ValueError("range outside object")
        if key in self._ssd_resident:
            self._ssd_resident.move_to_end(key)
            self.stats.ssd_hits += 1
            yield from self.ssd.read(length)
        else:
            self.stats.ssd_misses += 1
            yield from self.hdd.read(length)
            if self.promote_on_miss:
                yield from self._promote(key, len(data))
        return data[offset : offset + length]

    def list_keys(self, after: Optional[str] = None) -> list[str]:
        keys = sorted(self._base)
        if after is not None:
            import bisect

            keys = keys[bisect.bisect_right(keys, after):]
        return keys

    def ssd_used_bytes(self) -> int:
        return self._ssd_used

    def load(self, items) -> None:
        """Bulk-populate the base tier without simulated cost (fixtures)."""
        for k, v in items:
            self._base[k] = bytes(v)

    def size_bytes(self) -> int:
        return sum(len(v) for v in self._base.values())
