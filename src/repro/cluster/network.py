"""Network fabric: point-to-point transfers with latency and bandwidth.

Models the paper's full-bisection 100 Gb/s InfiniBand network (Table 4).
A transfer acquires the sender's egress NIC, then the receiver's ingress
NIC, then holds both for ``latency + nbytes/bandwidth``.  The strict
egress-before-ingress acquisition order makes concurrent transfers
deadlock-free (no process ever holds an ingress while waiting for an
egress).  Incast onto a hot receiver therefore queues on its ingress NIC
— the effect that separates "every client connects to every server"
(Memcached) from DIESEL's one-master-per-node fan-in.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.calibration import NetworkProfile
from repro.errors import ClusterError, NodeDownError
from repro.sim.engine import Environment, Event
from repro.cluster.node import Node


class FabricStats:
    """Cumulative transfer counters."""

    __slots__ = ("transfers", "bytes_moved", "intra_node", "degraded_transfers")

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes_moved = 0
        self.intra_node = 0
        #: Transfers that touched a chaos-degraded NIC.
        self.degraded_transfers = 0


class NetworkFabric:
    """Registry of nodes plus the transfer primitive between them."""

    def __init__(
        self, env: Environment, profile: NetworkProfile | None = None
    ) -> None:
        self.env = env
        self.profile = profile or NetworkProfile()
        self._nodes: Dict[str, Node] = {}
        self.stats = FabricStats()
        #: Intra-node (loopback / shared-memory) copy bandwidth.
        self.local_bandwidth_bps = 4 * self.profile.bandwidth_bps
        self.local_latency_s = 0.5e-6

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ClusterError(f"duplicate node name: {node.name!r}")
        self._nodes[node.name] = node
        node.fabric = self
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    def _check_alive(self, node: Node) -> None:
        if not node.alive:
            raise NodeDownError(node.name)

    def transfer(
        self, src: Node | str, dst: Node | str, nbytes: int
    ) -> Generator[Event, Any, None]:
        """Move ``nbytes`` from ``src`` to ``dst`` in simulated time."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        src = self.node(src) if isinstance(src, str) else src
        dst = self.node(dst) if isinstance(dst, str) else dst
        self._check_alive(src)
        self._check_alive(dst)
        if src is dst:
            # Intra-node move: shared memory, no NIC involvement.
            yield self.env.timeout(
                self.local_latency_s + nbytes / self.local_bandwidth_bps
            )
            self.stats.transfers += 1
            self.stats.intra_node += 1
            self.stats.bytes_moved += nbytes
            return
        serialize = nbytes / self.profile.bandwidth_bps
        latency = self.profile.latency_s
        # Chaos degradation: a straggling endpoint slows the whole
        # transfer (the path is only as fast as its worst NIC) and adds
        # its extra latency.  Neutral nodes leave timing untouched.
        slow = src.nic_slow_factor
        if dst.nic_slow_factor > slow:
            slow = dst.nic_slow_factor
        extra = src.nic_extra_latency_s + dst.nic_extra_latency_s
        if slow != 1.0 or extra:
            serialize *= slow
            latency += extra
            self.stats.degraded_transfers += 1
        # Ordered acquisition: egress first, then ingress (deadlock-free).
        egress_req = src.egress._station.request()
        try:
            yield egress_req
        except BaseException:
            src.egress._station.abandon(egress_req)
            raise
        try:
            ingress_req = dst.ingress._station.request()
            try:
                yield ingress_req
            except BaseException:
                dst.ingress._station.abandon(ingress_req)
                raise
            try:
                yield self.env.timeout(latency + serialize)
            finally:
                dst.ingress._station.release(ingress_req)
        finally:
            src.egress._station.release(egress_req)
        if not dst.alive:
            raise NodeDownError(dst.name, "receiver died during transfer")
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes

    def message_time(self, nbytes: int) -> float:
        """Unloaded one-way time for ``nbytes`` (no contention)."""
        return self.profile.latency_s + nbytes / self.profile.bandwidth_bps
