"""Simulated cluster substrate: nodes, storage devices, network fabric.

Models the paper's testbed (Table 4): six storage machines with NVMe
SSDs, ten test machines, all on a 100 Gb/s InfiniBand fabric.  Each
hardware element is a queueing station over the DES kernel so concurrent
load produces realistic saturation shapes.
"""

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.devices import Device
from repro.cluster.failure import FailureInjector
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Device",
    "FailureInjector",
    "NetworkFabric",
    "Node",
]
