"""Failure injection for cluster experiments.

The paper's failure experiments (Fig 6, Fig 11b, §4.2) kill cache
instances mid-run.  :class:`FailureInjector` schedules node/device kills
at simulated times or on iteration triggers, and records what it did so
experiments can annotate their output.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.cluster.node import Node
from repro.sim.engine import Environment


class FailureInjector:
    """Schedules and logs failures against a set of nodes."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.log: List[Tuple[float, str, str]] = []

    def kill_at(self, node: Node, when: float) -> None:
        """Kill ``node`` at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"kill time {when} is in the past (now={self.env.now})")

        def killer(env):
            yield env.timeout(when - env.now)
            if node.alive:
                node.kill()
                self.log.append((env.now, "kill", node.name))

        self.env.process(killer(self.env), name=f"kill:{node.name}")

    def restore_at(self, node: Node, when: float) -> None:
        """Bring ``node`` back at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"restore time {when} is in the past")

        def restorer(env):
            yield env.timeout(when - env.now)
            if not node.alive:
                node.restore()
                self.log.append((env.now, "restore", node.name))

        self.env.process(restorer(self.env), name=f"restore:{node.name}")

    def kill_now(self, node: Node) -> None:
        node.kill()
        self.log.append((self.env.now, "kill", node.name))

    def on_trigger(self, node: Node, predicate_done: Callable[[], bool]) -> None:
        """Poll ``predicate_done`` each simulated millisecond; kill on True.

        Used for iteration-count triggers ("disable the instance at
        iteration 30", Fig 6) where the trigger is workload progress, not
        wall-clock time.
        """

        def watcher(env):
            while node.alive:
                if predicate_done():
                    node.kill()
                    self.log.append((env.now, "kill", node.name))
                    return
                yield env.timeout(1e-3)

        self.env.process(watcher(self.env), name=f"watch:{node.name}")
