"""Failure injection and scenario-driven chaos for cluster experiments.

The paper's failure experiments (Fig 6, Fig 11b, §4.2) kill cache
instances mid-run.  :class:`FailureInjector` schedules node/device kills
at simulated times or on iteration triggers, and records what it did so
experiments can annotate their output.

:class:`ChaosSchedule` goes beyond clean crashes into the *hostile
world*: timed windows of slow nodes and degraded/lossy NICs, latency
spikes, flash-crowd read bursts against one hot dataset, and churn
loops (repeated scale-down/scale-up).  Scenarios are declared up front,
``start()`` arms them, and every applied/reverted action lands in one
ordered log so experiments and the ``dlcmd chaos`` probe can show what
the cluster was suffering at any instant.  All timing and randomness
run on the sim clock and a seeded RNG — chaos runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cluster.node import Node
from repro.sim.engine import Environment, Process


class FailureInjector:
    """Schedules and logs failures against a set of nodes."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.log: List[Tuple[float, str, str]] = []

    def kill_at(self, node: Node, when: float) -> None:
        """Kill ``node`` at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"kill time {when} is in the past (now={self.env.now})")

        def killer(env):
            yield env.timeout(when - env.now)
            if node.alive:
                node.kill()
                self.log.append((env.now, "kill", node.name))

        self.env.process(killer(self.env), name=f"kill:{node.name}")

    def restore_at(self, node: Node, when: float) -> None:
        """Bring ``node`` back at absolute simulated time ``when``."""
        if when < self.env.now:
            raise ValueError(f"restore time {when} is in the past")

        def restorer(env):
            yield env.timeout(when - env.now)
            if not node.alive:
                node.restore()
                self.log.append((env.now, "restore", node.name))

        self.env.process(restorer(self.env), name=f"restore:{node.name}")

    def kill_now(self, node: Node) -> None:
        node.kill()
        self.log.append((self.env.now, "kill", node.name))

    def on_trigger(self, node: Node, predicate_done: Callable[[], bool]) -> None:
        """Poll ``predicate_done`` each simulated millisecond; kill on True.

        Used for iteration-count triggers ("disable the instance at
        iteration 30", Fig 6) where the trigger is workload progress, not
        wall-clock time.
        """

        def watcher(env):
            while node.alive:
                if predicate_done():
                    node.kill()
                    self.log.append((env.now, "kill", node.name))
                    return
                yield env.timeout(1e-3)

        self.env.process(watcher(self.env), name=f"watch:{node.name}")


class ChaosSchedule:
    """Declarative adversity: timed degradations, bursts, and churn.

    Declare scenarios with the ``slow_node`` / ``degrade_nic`` /
    ``latency_spikes`` / ``flash_crowd`` / ``churn`` / ``at`` builders
    (each returns ``self`` for chaining), then call :meth:`start`.  One
    sim process per scenario applies it at its scheduled time and — for
    windowed scenarios — reverts it after ``duration_s``.

    :attr:`log` records ``(time, action, target)`` for every applied and
    reverted step; :meth:`active` lists the windows currently in force;
    :meth:`describe` dumps the full declared schedule.
    """

    def __init__(self, env: Environment, seed: int = 0xC4A05) -> None:
        self.env = env
        self.rng = random.Random(seed)
        self.injector = FailureInjector(env)
        self.log: List[Tuple[float, str, str]] = []
        self._scenarios: List[Dict[str, Any]] = []
        self._active: Dict[int, Dict[str, Any]] = {}
        self._procs: List[Process] = []
        self._started = False

    # ----------------------------------------------------------- builders
    def _add(self, at: float, label: str, body) -> "ChaosSchedule":
        if self._started:
            raise RuntimeError("chaos schedule already started")
        if at < 0:
            raise ValueError("scenario time must be >= 0")
        self._scenarios.append({"at": at, "label": label, "body": body})
        return self

    def slow_node(
        self, node: Node, factor: float, at: float, duration_s: float
    ) -> "ChaosSchedule":
        """A straggler: ``node``'s NIC serializes ``factor``× slower for
        ``duration_s`` starting at ``at`` (the node stays alive — no
        failure detector will save you)."""

        def body(sched: "ChaosSchedule"):
            node.degrade(slow_factor=factor)
            yield sched.env.timeout(duration_s)
            node.undegrade()

        return self._add(at, f"slow_node:{node.name}x{factor:g}", body)

    def degrade_nic(
        self,
        node: Node,
        factor: float,
        extra_latency_s: float,
        at: float,
        duration_s: float,
    ) -> "ChaosSchedule":
        """A lossy/renegotiated NIC: bandwidth cut by ``factor`` *and*
        per-transfer latency inflated by ``extra_latency_s`` (the
        effective shape of retransmissions on a lossy link)."""

        def body(sched: "ChaosSchedule"):
            node.degrade(slow_factor=factor, extra_latency_s=extra_latency_s)
            yield sched.env.timeout(duration_s)
            node.undegrade()

        return self._add(at, f"degrade_nic:{node.name}", body)

    def latency_spikes(
        self,
        nodes: List[Node],
        extra_latency_s: float,
        at: float,
        duration_s: float,
        spikes: int = 3,
        spike_s: float = 0.01,
    ) -> "ChaosSchedule":
        """``spikes`` short latency storms at seeded-random instants
        inside the window, each adding ``extra_latency_s`` to every
        transfer touching ``nodes`` for ``spike_s``."""
        if spikes < 1:
            raise ValueError("spikes must be >= 1")

        def body(sched: "ChaosSchedule"):
            offsets = sorted(
                sched.rng.uniform(0.0, max(duration_s - spike_s, 0.0))
                for _ in range(spikes)
            )
            t0 = sched.env.now
            for off in offsets:
                gap = t0 + off - sched.env.now
                if gap > 0:
                    yield sched.env.timeout(gap)
                for n in nodes:
                    n.degrade(
                        slow_factor=n.nic_slow_factor,
                        extra_latency_s=extra_latency_s,
                    )
                sched.log.append((sched.env.now, "spike_on", ",".join(
                    n.name for n in nodes)))
                yield sched.env.timeout(spike_s)
                for n in nodes:
                    n.degrade(slow_factor=n.nic_slow_factor)
                sched.log.append((sched.env.now, "spike_off", ",".join(
                    n.name for n in nodes)))

        return self._add(at, f"latency_spikes:{len(nodes)}nodes", body)

    def flash_crowd(
        self,
        at: float,
        readers: Callable[[], List[Generator]],
        label: str = "flash_crowd",
    ) -> "ChaosSchedule":
        """A read burst: at ``at``, ``readers()`` is called and every
        generator it returns is launched simultaneously.  The scenario
        window closes when all readers finish."""

        def body(sched: "ChaosSchedule"):
            procs = [
                sched.env.process(gen, name=f"{label}:{i}")
                for i, gen in enumerate(readers())
            ]
            if procs:
                yield sched.env.all_of(procs)

        return self._add(at, label, body)

    def churn(
        self,
        at: float,
        cycles: int,
        dwell_s: float,
        down: Callable[[], Optional[Generator]],
        up: Callable[[], Optional[Generator]],
        label: str = "churn",
    ) -> "ChaosSchedule":
        """A membership churn loop: ``cycles`` rounds of ``down()`` then,
        ``dwell_s`` later, ``up()``, with ``dwell_s`` between rounds.
        The callables may return a generator (driven inline, e.g. a
        ``TaskCache.scale_down`` drain) or act immediately and return
        ``None``."""
        if cycles < 1:
            raise ValueError("cycles must be >= 1")

        def body(sched: "ChaosSchedule"):
            for cycle in range(cycles):
                gen = down()
                if gen is not None:
                    yield from gen
                sched.log.append((sched.env.now, "churn_down", f"{label}#{cycle}"))
                yield sched.env.timeout(dwell_s)
                gen = up()
                if gen is not None:
                    yield from gen
                sched.log.append((sched.env.now, "churn_up", f"{label}#{cycle}"))
                yield sched.env.timeout(dwell_s)

        return self._add(at, label, body)

    def at(
        self, when: float, action: Callable[[], Optional[Generator]], label: str
    ) -> "ChaosSchedule":
        """Escape hatch: run an arbitrary action (or drive the generator
        it returns) at time ``when``."""

        def body(sched: "ChaosSchedule"):
            gen = action()
            if gen is not None:
                yield from gen

        return self._add(when, label, body)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ChaosSchedule":
        """Arm every declared scenario (idempotent per schedule)."""
        if self._started:
            raise RuntimeError("chaos schedule already started")
        self._started = True
        for idx, sc in enumerate(self._scenarios):
            self._procs.append(
                self.env.process(self._run(idx, sc), name=f"chaos:{sc['label']}")
            )
        return self

    def _run(self, idx: int, sc: Dict[str, Any]):
        delay = sc["at"] - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.log.append((self.env.now, "apply", sc["label"]))
        self._active[idx] = sc
        try:
            yield from sc["body"](self)
        finally:
            self._active.pop(idx, None)
            self.log.append((self.env.now, "revert", sc["label"]))

    # ------------------------------------------------------------ reporting
    def active(self) -> List[str]:
        """Labels of scenario windows currently in force."""
        return sorted(sc["label"] for sc in self._active.values())

    def describe(self) -> List[Dict[str, Any]]:
        """The declared schedule, in scheduled order."""
        return [
            {"at": sc["at"], "label": sc["label"]}
            for sc in sorted(self._scenarios, key=lambda s: s["at"])
        ]

    @property
    def done(self) -> bool:
        """Whether every armed scenario has finished."""
        return self._started and all(not p.is_alive for p in self._procs)
