"""Compute/storage node model.

A node bundles a name, liveness state, a memory budget (bytes) and two
NIC directions (egress/ingress), each a bandwidth-serializing queueing
station.  Services (KV shards, cache masters, DIESEL servers) attach to a
node; killing the node takes all of them down — the containment property
the task-grained cache is built around (§4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ClusterError
from repro.sim.engine import Environment
from repro.sim.resources import Container, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import NetworkFabric


class Nic:
    """One direction of a node's NIC: a FIFO bandwidth serializer."""

    def __init__(
        self, env: Environment, bandwidth_bps: float, channels: int = 4
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("NIC bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self._station = Resource(env, channels)

    def occupy(self, nbytes: int):
        """Hold one channel for the serialization time of ``nbytes``."""
        yield from self._station.use(nbytes / self.bandwidth_bps)


class Node:
    """A machine in the simulated cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_bytes: float = 256 * 2**30,
        nic_bandwidth_bps: float = 100e9 / 8,
        nic_channels: int = 4,
    ) -> None:
        self.env = env
        self.name = name
        self.memory = Container(env, capacity=memory_bytes, init=memory_bytes)
        self.egress = Nic(env, nic_bandwidth_bps, nic_channels)
        self.ingress = Nic(env, nic_bandwidth_bps, nic_channels)
        self._alive = True
        self._on_fail: list = []
        self.fabric: "NetworkFabric | None" = None
        # Degradation state (chaos harness): a straggling-but-alive node.
        # ``nic_slow_factor`` multiplies serialization time of transfers
        # touching this node; ``nic_extra_latency_s`` is added per
        # transfer.  Defaults are neutral, so an untouched cluster's
        # timing is bit-identical to pre-chaos traces.
        self.nic_slow_factor = 1.0
        self.nic_extra_latency_s = 0.0

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def degraded(self) -> bool:
        """Whether any NIC degradation is currently applied."""
        return self.nic_slow_factor != 1.0 or self.nic_extra_latency_s != 0.0

    def degrade(
        self, slow_factor: float = 1.0, extra_latency_s: float = 0.0
    ) -> None:
        """Apply NIC degradation (replacing any previous degradation)."""
        if slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if extra_latency_s < 0.0:
            raise ValueError("extra_latency_s must be >= 0")
        self.nic_slow_factor = slow_factor
        self.nic_extra_latency_s = extra_latency_s

    def undegrade(self) -> None:
        """Clear NIC degradation back to neutral."""
        self.nic_slow_factor = 1.0
        self.nic_extra_latency_s = 0.0

    def on_fail(self, callback) -> None:
        """Register ``callback()`` to run when this node is killed."""
        self._on_fail.append(callback)

    def kill(self) -> None:
        """Fail the node; notifies attached services."""
        if not self._alive:
            raise ClusterError(f"node {self.name!r} is already down")
        self._alive = False
        for cb in self._on_fail:
            cb()

    def restore(self) -> None:
        if self._alive:
            raise ClusterError(f"node {self.name!r} is already up")
        self._alive = True

    def __repr__(self) -> str:
        state = "up" if self._alive else "DOWN"
        return f"Node({self.name!r}, {state})"
