"""Storage device models.

A device is a ``queue_depth``-server FIFO queueing station whose service
time for one operation of ``n`` bytes is::

    t(n) = per_op_s + n / bandwidth_bps

This two-parameter model reproduces the paper's Table 2 (read bandwidth
and IOPS versus file size on the SSD storage cluster) within ~10 % across
all seven rows — see :class:`repro.calibration.NvmeProfile` for the fit.
Small requests are dominated by ``per_op_s`` (IOPS-bound), large requests
by the ``n / bandwidth`` term (bandwidth-bound); the crossover is exactly
the behaviour DIESEL's ≥4 MB chunks exploit.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.calibration import HddProfile, NvmeProfile
from repro.errors import NodeDownError
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource


class DeviceStats:
    """Cumulative operation counters for a device."""

    __slots__ = ("read_ops", "read_bytes", "write_ops", "write_bytes", "busy_time")

    def __init__(self) -> None:
        self.read_ops = 0
        self.read_bytes = 0
        self.write_ops = 0
        self.write_bytes = 0
        self.busy_time = 0.0


class Device:
    """A storage device (or aggregated storage cluster) queueing station."""

    def __init__(
        self,
        env: Environment,
        name: str,
        per_op_s: float,
        bandwidth_bps: float,
        queue_depth: int = 1,
    ) -> None:
        if per_op_s < 0:
            raise ValueError("per_op_s must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        self.env = env
        self.name = name
        self.per_op_s = per_op_s
        self.bandwidth_bps = bandwidth_bps
        self._station = Resource(env, queue_depth)
        self.stats = DeviceStats()
        self._alive = True

    @classmethod
    def nvme(cls, env: Environment, name: str = "nvme", profile: NvmeProfile | None = None) -> "Device":
        p = profile or NvmeProfile()
        return cls(env, name, p.per_op_s, p.bandwidth_bps, p.queue_depth)

    @classmethod
    def hdd(cls, env: Environment, name: str = "hdd", profile: HddProfile | None = None) -> "Device":
        p = profile or HddProfile()
        return cls(env, name, p.per_op_s, p.bandwidth_bps, p.queue_depth)

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Take the device offline; in-flight and future ops will error."""
        self._alive = False

    def restore(self) -> None:
        self._alive = True

    def op_time(self, nbytes: int, op_multiplier: float = 1.0) -> float:
        """Service time of one operation of ``nbytes`` (no queueing).

        ``op_multiplier`` scales the fixed per-op term only — used for
        op classes with extra fixed overhead (e.g. Lustre's journaled
        creates) whose streaming bandwidth is unchanged.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if op_multiplier <= 0:
            raise ValueError("op_multiplier must be positive")
        return self.per_op_s * op_multiplier + nbytes / self.bandwidth_bps

    def _do_op(
        self, nbytes: int, op_multiplier: float = 1.0
    ) -> Generator[Event, Any, None]:
        if not self._alive:
            raise NodeDownError(self.name, "device offline")
        t = self.op_time(nbytes, op_multiplier)
        yield from self._station.use(t)
        if not self._alive:
            raise NodeDownError(self.name, "device failed mid-operation")
        self.stats.busy_time += t

    def read(
        self, nbytes: int, op_multiplier: float = 1.0
    ) -> Generator[Event, Any, None]:
        """Charge one read of ``nbytes`` (generator; run inside a process)."""
        yield from self._do_op(nbytes, op_multiplier)
        self.stats.read_ops += 1
        self.stats.read_bytes += nbytes

    def write(
        self, nbytes: int, op_multiplier: float = 1.0
    ) -> Generator[Event, Any, None]:
        """Charge one write of ``nbytes``."""
        yield from self._do_op(nbytes, op_multiplier)
        self.stats.write_ops += 1
        self.stats.write_bytes += nbytes

    @property
    def queue_length(self) -> int:
        return self._station.queue_length

    def __repr__(self) -> str:
        return (
            f"Device({self.name!r}, per_op={self.per_op_s * 1e6:.1f}us, "
            f"bw={self.bandwidth_bps / 2**30:.2f}GiB/s)"
        )
