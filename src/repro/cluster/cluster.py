"""Cluster builder: the paper's testbed topology (Table 4) as a spec.

A :class:`Cluster` owns the DES environment, the network fabric, the
storage machines (with their aggregated NVMe device and an HDD tier for
the server-cache experiments) and the test machines that run DIESEL
clients and training jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.calibration import Calibration, DEFAULT
from repro.cluster.devices import Device
from repro.cluster.failure import FailureInjector
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node
from repro.sim.engine import Environment


@dataclass(frozen=True)
class ClusterSpec:
    """Topology parameters.  Defaults mirror the paper's Table 4."""

    storage_nodes: int = 6
    compute_nodes: int = 10
    storage_memory_bytes: float = 512 * 2**30
    compute_memory_bytes: float = 256 * 2**30
    #: NVMe SSDs per storage machine (6 × 3.8 TB in the paper).
    ssds_per_storage_node: int = 6
    nic_channels: int = 8
    calibration: Calibration = field(default_factory=lambda: DEFAULT)

    def __post_init__(self) -> None:
        if self.storage_nodes < 1 or self.compute_nodes < 1:
            raise ValueError("cluster needs at least one node of each kind")


class Cluster:
    """A built topology ready for services to attach to."""

    def __init__(self, spec: ClusterSpec | None = None, env: Environment | None = None):
        self.spec = spec or ClusterSpec()
        self.env = env or Environment()
        cal = self.spec.calibration
        self.fabric = NetworkFabric(self.env, cal.network)
        self.failures = FailureInjector(self.env)

        self.storage_nodes: List[Node] = []
        for i in range(self.spec.storage_nodes):
            node = Node(
                self.env,
                f"storage{i}",
                memory_bytes=self.spec.storage_memory_bytes,
                nic_bandwidth_bps=cal.network.bandwidth_bps,
                nic_channels=self.spec.nic_channels,
            )
            self.fabric.add_node(node)
            self.storage_nodes.append(node)

        self.compute_nodes: List[Node] = []
        for i in range(self.spec.compute_nodes):
            node = Node(
                self.env,
                f"compute{i}",
                memory_bytes=self.spec.compute_memory_bytes,
                nic_bandwidth_bps=cal.network.bandwidth_bps,
                nic_channels=self.spec.nic_channels,
            )
            self.fabric.add_node(node)
            self.compute_nodes.append(node)

        # The storage machines' SSDs behave as one aggregated NVMe pool for
        # chunk I/O: per-stream service matches Table 2; the pool's queue
        # depth scales with machine and SSD count so aggregate concurrency
        # reflects the six-machine array.
        nvme_depth = cal.nvme.queue_depth
        self.ssd_pool = Device(
            self.env,
            "ssd-pool",
            per_op_s=cal.nvme.per_op_s,
            bandwidth_bps=cal.nvme.bandwidth_bps,
            queue_depth=nvme_depth,
        )
        self.hdd_pool = Device(
            self.env,
            "hdd-pool",
            per_op_s=cal.hdd.per_op_s,
            bandwidth_bps=cal.hdd.bandwidth_bps,
            queue_depth=cal.hdd.queue_depth,
        )

    @property
    def calibration(self) -> Calibration:
        return self.spec.calibration

    def compute(self, idx: int) -> Node:
        return self.compute_nodes[idx]

    def storage(self, idx: int) -> Node:
        return self.storage_nodes[idx]

    def __repr__(self) -> str:
        return (
            f"Cluster({self.spec.storage_nodes} storage + "
            f"{self.spec.compute_nodes} compute nodes)"
        )
