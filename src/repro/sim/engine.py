"""Event loop, events and generator-based processes.

The design follows the classic DES structure: a binary heap of
``(time, seq, event)`` entries; an :class:`Event` fires its callbacks when
popped; a :class:`Process` wraps a generator whose ``yield``-ed events
decide when it resumes.  ``return value`` inside a process generator
becomes the process's :attr:`~Event.value`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, InterruptError, SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Life cycle: *pending* → *triggered* (``succeed``/``fail`` called and the
    event scheduled) → *processed* (callbacks ran).  Callbacks receive the
    event itself.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; schedules callback delivery now."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class _Initialize(Event):
    """Internal: kicks a new process on the current tick."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running generator; also an event that triggers when it finishes."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_evt = Event(self.env)
        interrupt_evt.callbacks.append(self._deliver_interrupt)
        interrupt_evt.fail(InterruptError(cause))

    def _deliver_interrupt(self, event: Event) -> None:
        # Delivery happens a tick step after interrupt() was called, so
        # the process may have started (acquiring a wait target) or even
        # finished in between.  Detach *now*, not at interrupt() time.
        if not self.is_alive:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                next_evt = self._generator.send(event._value)
            else:
                # Failed event: raise inside the generator.  Mark the
                # exception as handled there; if it propagates out of the
                # generator, it fails this process instead.
                next_evt = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._target = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_evt, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_evt!r}"
            )
            self._generator.close()
            self._target = None
            self.fail(exc)
            return
        self._target = next_evt
        if next_evt.callbacks is None:
            # Already processed: resume immediately on the current tick.
            bridge = Event(self.env)
            bridge.callbacks.append(self._resume)
            if next_evt._ok:
                bridge.succeed(next_evt._value)
            else:
                bridge.fail(next_evt._value)
        else:
            next_evt.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        for evt in self.events:
            if evt.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            if evt.callbacks is None:
                self._on_child(evt)
                if self.triggered:
                    break
            else:
                evt.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout carries its value from
        # creation, but it has not "happened" until the loop delivers it.
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered (fails fast on error)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the first child event triggers."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Semaphore:
    """A counting semaphore over plain events (bounded fan-out).

    ``acquire()`` returns an event that fires once one of ``slots`` is
    granted; ``release(evt)`` frees the slot and grants the next
    non-withdrawn waiter in FIFO order.  ``abandon(evt)`` gives a slot
    request up whatever its state — releases if granted, withdraws if
    still queued — the safe cleanup when the acquiring process is
    interrupted at its ``yield`` (it cannot know whether the grant raced
    the interrupt).  ``high_water`` records the most slots ever held at
    once, the observable proof that overlap actually happened.

    Lives in the engine (unlike :class:`repro.sim.resources.Resource`)
    so :func:`fan_out` has no import cycle.
    """

    __slots__ = ("env", "slots", "_holders", "_queue", "_withdrawn",
                 "high_water")

    def __init__(self, env: "Environment", slots: int) -> None:
        if slots < 1:
            raise SimulationError(f"semaphore needs >= 1 slot, got {slots}")
        self.env = env
        self.slots = slots
        self._holders: set[Event] = set()
        self._queue: deque[Event] = deque()
        self._withdrawn: set[Event] = set()
        self.high_water = 0

    @property
    def in_flight(self) -> int:
        """Slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _grant(self, evt: Event) -> None:
        self._holders.add(evt)
        if len(self._holders) > self.high_water:
            self.high_water = len(self._holders)
        evt.succeed()

    def acquire(self) -> Event:
        """Event that fires once a slot is held (immediately if free)."""
        evt = Event(self.env)
        if len(self._holders) < self.slots:
            self._grant(evt)
        else:
            self._queue.append(evt)
        return evt

    def release(self, evt: Event) -> None:
        if evt not in self._holders:
            raise SimulationError("releasing a slot that is not held")
        self._holders.remove(evt)
        while self._queue:
            nxt = self._queue.popleft()
            if nxt in self._withdrawn:
                self._withdrawn.discard(nxt)
                continue
            self._grant(nxt)
            break

    def abandon(self, evt: Event) -> None:
        """Give a slot request up whatever its state."""
        if evt in self._holders:
            self.release(evt)
        else:
            self._withdrawn.add(evt)


def fan_out(
    env: "Environment",
    gens: Iterable[Generator[Event, Any, Any]],
    limit: int,
    name: str = "fan_out",
    watermark: Optional[Callable[[int], None]] = None,
) -> Generator[Event, Any, list]:
    """Scatter-gather: run generators concurrently, at most ``limit`` at once.

    A generator function — drive it with ``yield from``.  Each of
    ``gens`` runs as its own process once a :class:`Semaphore` slot
    frees up, so at most ``limit`` are active at any simulated instant;
    returns their return values in input order.  The first failure
    interrupts every still-running worker (queued slot requests are
    withdrawn, so no slot leaks) and then propagates.  Interrupting the
    *calling* process mid-gather cancels the whole fan-out the same way.

    ``watermark``, if given, is called with the number of concurrently
    held slots as each worker starts — the hook callers use to record
    in-flight high-water marks into their stats.
    """
    gens = list(gens)
    if limit < 1:
        raise SimulationError(f"fan_out limit must be >= 1, got {limit}")
    results: list[Any] = [None] * len(gens)
    if not gens:
        return results
    sem = Semaphore(env, limit)

    def worker(index: int, gen: Generator[Event, Any, Any]):
        slot = sem.acquire()
        try:
            yield slot
        except BaseException:
            sem.abandon(slot)
            gen.close()
            raise
        if watermark is not None:
            watermark(sem.in_flight)
        try:
            results[index] = yield from gen
        finally:
            sem.release(slot)

    procs = [
        env.process(worker(i, gen), name=f"{name}[{i}]")
        for i, gen in enumerate(gens)
    ]
    try:
        yield AllOf(env, procs)
    except BaseException:
        for proc in procs:
            if proc.is_alive:
                proc.interrupt("fan_out aborted")
        raise
    return results


class Environment:
    """The simulation kernel: clock + event heap + process registry."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Optional event observer (see repro.sim.trace.Tracer.attach).
        self._tracer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    # -- public factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise DeadlockError("event queue is empty")
        t, _, event = heapq.heappop(self._heap)
        if t < self._now:
            raise SimulationError("scheduled time is in the past")
        self._now = t
        if self._tracer is not None:
            self._tracer.observe(t, event)
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the loop.

        * ``until=None``: run until the queue drains; returns ``None``.
        * numeric ``until``: run until simulated time reaches it.
        * ``until=event``: run until the event triggers; returns/raises the
          event's value.  Raises :class:`DeadlockError` if the queue drains
          first.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.triggered:
                if not self._heap:
                    raise DeadlockError(
                        f"simulation ran dry before {sentinel!r} triggered"
                    )
                self.step()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run(until={deadline}) is in the past (now={self._now})"
            )
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None


def run_sync(
    env: Environment, generator: Generator[Event, Any, Any], name: str = ""
) -> Any:
    """Run ``generator`` as a process to completion and return its value.

    Convenience for tests and for the synchronous client facade: drives
    the environment until the process finishes (other concurrently
    scheduled processes advance too).
    """
    proc = env.process(generator, name=name)
    return env.run(until=proc)
