"""Event loop, events and generator-based processes.

The design follows the classic DES structure: a scheduler of
``(time, seq, event)`` entries; an :class:`Event` fires its callbacks when
popped; a :class:`Process` wraps a generator whose ``yield``-ed events
decide when it resumes.  ``return value`` inside a process generator
becomes the process's :attr:`~Event.value`.

Two schedulers sit behind the same ``_schedule``/``step``/``peek``/``run``
API (selectable per :class:`Environment`, default ``"calendar"``):

* ``"calendar"`` — a calendar queue (Brown 1988) with a small binary heap
  over the *current* bucket-year only.  Enqueue of a future event is a
  plain list append into its bucket; dequeue pops the active heap and
  harvests the next bucket-year when it drains.  Bucket count and width
  recalibrate automatically as the queue grows and shrinks, so both the
  dense near-term band and the sparse far tail of a bimodal delay
  distribution stay O(1)-ish.
* ``"heap"`` — the flat ``heapq`` of the original kernel, kept as an A/B
  baseline (``REPRO_SIM_SCHEDULER=heap`` flips the default).

Same-tick FIFO is identical under both: entries carry a monotonically
increasing ``seq`` and compare ``(time, seq)``, so events scheduled for
the same instant fire in creation order.

The hot path is deliberately low-churn: ``Environment.timeout`` recycles
:class:`Timeout` objects through a free list (an event is returned to the
pool only when ``step`` can prove, by refcount, that nobody else holds
it); a process resuming on an already-processed event continues inline
instead of allocating a bridge event; and ``step`` itself is pre-bound to
a traced or untraced body when a tracer attaches/detaches, so detached
observability costs zero branches per event.
"""

from __future__ import annotations

import os
import weakref
from collections import deque
from heapq import heapify, heappop, heappush
from sys import getrefcount
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, InterruptError, SimulationError

_PENDING = object()
_INF = float("inf")


class Event:
    """A one-shot occurrence at a point in simulated time.

    Life cycle: *pending* → *triggered* (``succeed``/``fail`` called and the
    event scheduled) → *processed* (callbacks ran).  Callbacks receive the
    event itself.

    The ``_granted`` slot is :class:`Semaphore` bookkeeping: it marks a
    held slot on the event itself so granting/releasing never mutates a
    shared holder set on the common path.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_granted")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; schedules callback delivery now."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Environment.timeout`, which recycles instances through
    the environment's free list; constructing ``Timeout`` directly always
    allocates.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class _Initialize(Event):
    """Internal: kicks a new process on the current tick."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running generator; also an event that triggers when it finishes."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_evt = Event(self.env)
        interrupt_evt.callbacks.append(self._deliver_interrupt)
        interrupt_evt.fail(InterruptError(cause))

    def _deliver_interrupt(self, event: Event) -> None:
        # Delivery happens a tick step after interrupt() was called, so
        # the process may have started (acquiring a wait target) or even
        # finished in between.  Detach *now*, not at interrupt() time.
        if not self.is_alive:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        env._active_process = self
        # Trampoline: yielding an already-processed event (a finished
        # process, a triggered timeout held from earlier) resumes the
        # generator inline — no bridge event, no scheduler round-trip.
        while True:
            try:
                if event._ok:
                    next_evt = generator.send(event._value)
                else:
                    # Failed event: raise inside the generator.  If it
                    # propagates out of the generator, it fails this
                    # process instead.
                    next_evt = generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self._target = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return

            if not isinstance(next_evt, Event):
                env._active_process = None
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_evt!r}"
                )
                generator.close()
                self._target = None
                self.fail(exc)
                return
            if next_evt.callbacks is None:
                # Already processed: continue on the current tick.
                event = next_evt
                continue
            self._target = next_evt
            next_evt.callbacks.append(self._resume)
            env._active_process = None
            return

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        for evt in self.events:
            if evt.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for evt in self.events:
            if evt.callbacks is None:
                self._on_child(evt)
                if self.triggered:
                    break
            else:
                evt.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout carries its value from
        # creation, but it has not "happened" until the loop delivers it.
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered (fails fast on error)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when the first child event triggers."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Semaphore:
    """A counting semaphore over plain events (bounded fan-out).

    ``acquire()`` returns an event that fires once one of ``slots`` is
    granted; ``release(evt)`` frees the slot and grants the next
    non-withdrawn waiter in FIFO order.  ``abandon(evt)`` gives a slot
    request up whatever its state — releases if granted, withdraws if
    still queued — the safe cleanup when the acquiring process is
    interrupted at its ``yield`` (it cannot know whether the grant raced
    the interrupt).  ``high_water`` records the most slots ever held at
    once, the observable proof that overlap actually happened.

    Slot accounting is a plain held-count plus a per-event grant flag
    (``Event._granted``); the grant/release common path never mutates a
    shared holder set.  Withdrawn-but-queued entries are compacted away
    once they outnumber live waiters, so a semaphore that is never
    released again cannot pin abandoned events forever.

    Lives in the engine (unlike :class:`repro.sim.resources.Resource`)
    so :func:`fan_out` has no import cycle.
    """

    __slots__ = ("env", "slots", "_held", "_queue", "_withdrawn",
                 "high_water")

    def __init__(self, env: "Environment", slots: int) -> None:
        if slots < 1:
            raise SimulationError(f"semaphore needs >= 1 slot, got {slots}")
        self.env = env
        self.slots = slots
        self._held = 0
        self._queue: deque[Event] = deque()
        self._withdrawn: set[Event] = set()
        self.high_water = 0

    @property
    def in_flight(self) -> int:
        """Slots currently held."""
        return self._held

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Event that fires once a slot is held (immediately if free)."""
        evt = Event(self.env)
        held = self._held
        if held < self.slots:
            held += 1
            self._held = held
            if held > self.high_water:
                self.high_water = held
            evt._granted = True
            evt.succeed()
        else:
            self._queue.append(evt)
        return evt

    def release(self, evt: Event) -> None:
        if not getattr(evt, "_granted", False):
            raise SimulationError("releasing a slot that is not held")
        evt._granted = False
        queue = self._queue
        withdrawn = self._withdrawn
        while queue:
            nxt = queue.popleft()
            if withdrawn and nxt in withdrawn:
                withdrawn.discard(nxt)
                continue
            # Hand the slot straight over: held count is unchanged.
            nxt._granted = True
            nxt.succeed()
            return
        self._held -= 1

    def abandon(self, evt: Event) -> None:
        """Give a slot request up whatever its state."""
        if getattr(evt, "_granted", False):
            self.release(evt)
        else:
            self._withdrawn.add(evt)
            # A withdrawn entry stays in _queue until a release walks past
            # it; if the semaphore is never released again that pins the
            # event forever.  Compact once withdrawals dominate.
            if len(self._withdrawn) * 2 > len(self._queue):
                self._compact()

    def _compact(self) -> None:
        withdrawn = self._withdrawn
        self._queue = deque(e for e in self._queue if e not in withdrawn)
        withdrawn.clear()


def fan_out(
    env: "Environment",
    gens: Iterable[Generator[Event, Any, Any]],
    limit: int,
    name: str = "fan_out",
    watermark: Optional[Callable[[int], None]] = None,
) -> Generator[Event, Any, list]:
    """Scatter-gather: run generators concurrently, at most ``limit`` at once.

    A generator function — drive it with ``yield from``.  Each of
    ``gens`` runs as its own process once a :class:`Semaphore` slot
    frees up, so at most ``limit`` are active at any simulated instant;
    returns their return values in input order.  The first failure
    interrupts every still-running worker (queued slot requests are
    withdrawn, so no slot leaks) and then propagates.  Interrupting the
    *calling* process mid-gather cancels the whole fan-out the same way.

    ``watermark``, if given, is called with the number of concurrently
    held slots as each worker starts — the hook callers use to record
    in-flight high-water marks into their stats.
    """
    gens = list(gens)
    if limit < 1:
        raise SimulationError(f"fan_out limit must be >= 1, got {limit}")
    results: list[Any] = [None] * len(gens)
    if not gens:
        return results
    sem = Semaphore(env, limit)

    def worker(index: int, gen: Generator[Event, Any, Any]):
        slot = sem.acquire()
        try:
            yield slot
        except BaseException:
            sem.abandon(slot)
            gen.close()
            raise
        if watermark is not None:
            watermark(sem.in_flight)
        try:
            results[index] = yield from gen
        finally:
            sem.release(slot)

    procs = [
        env.process(worker(i, gen), name=f"{name}[{i}]")
        for i, gen in enumerate(gens)
    ]
    try:
        yield AllOf(env, procs)
    except BaseException:
        for proc in procs:
            if proc.is_alive:
                proc.interrupt("fan_out aborted")
        raise
    return results


# --------------------------------------------------------------------------
# Schedulers.  Both hold (time, seq, Event) entries and expose the same
# push/pop/peek_time surface; ``seq`` ties same-tick FIFO order to event
# creation order under either implementation.
# --------------------------------------------------------------------------


class _HeapQueue:
    """The flat binary heap of the original kernel (A/B baseline)."""

    __slots__ = ("_heap", "peak")

    name = "heap"

    def __init__(self, anchor: float = 0.0) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self.peak = 0

    def push(self, t: float, seq: int, event: Event) -> None:
        heap = self._heap
        heappush(heap, (t, seq, event))
        if len(heap) > self.peak:
            self.peak = len(heap)

    def pop(self) -> tuple[float, int, Event]:
        return heappop(self._heap)

    def peek_time(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def __len__(self) -> int:
        return len(self._heap)


class _CalendarQueue:
    """Calendar queue with a heap over the current bucket-year only.

    Every entry is classified by its integer *year* ``int(t / width)``;
    the same expression everywhere, so no entry can straddle a year
    boundary through float rounding.  Invariants:

    * every entry whose year is ``<= _year`` lives in ``_active`` (a
      small binary heap; same ``(time, seq)`` ordering as the flat
      heap);
    * every other entry lives in bucket ``year % nbuckets`` as an
      unsorted list — enqueue is an append, O(1).

    When ``_active`` drains, the next non-empty bucket-year is split out,
    heapified (timsort-grade C work on a handful of entries) and becomes
    the new active heap.  A full fruitless revolution falls back to a
    direct minimum search and jumps the calendar there, so sparse far
    tails cannot spin the harvest loop.  Bucket count doubles/halves with
    occupancy and the bucket width recalibrates from the observed
    inter-event gaps at every resize.
    """

    __slots__ = ("_buckets", "_nbuckets", "_mask", "_width", "_inv_width",
                 "_year", "_active", "_count", "_grow_at",
                 "_shrink_at", "peak")

    name = "calendar"

    #: Bucket-count bounds; growth doubles within, shrink halves within.
    MIN_BUCKETS = 64
    MAX_BUCKETS = 1 << 17

    def __init__(
        self, anchor: float = 0.0, nbuckets: int = 256, width: float = 1e-3
    ) -> None:
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(nbuckets)
        ]
        #: Current bucket-year: ``_active`` holds every entry with
        #: ``int(t * _inv_width) <= _year``.
        self._year = int(anchor * self._inv_width)
        self._active: list[tuple[float, int, Event]] = []
        self._count = 0
        self._grow_at = nbuckets * 4
        self._shrink_at = nbuckets // 4
        self.peak = 0

    def push(self, t: float, seq: int, event: Event) -> None:
        count = self._count + 1
        self._count = count
        if count > self.peak:
            self.peak = count
        year = int(t * self._inv_width)
        if year <= self._year:
            heappush(self._active, (t, seq, event))
        else:
            self._buckets[year & self._mask].append((t, seq, event))
        if count > self._grow_at and self._nbuckets < self.MAX_BUCKETS:
            nb = self._nbuckets
            while count > nb * 4 and nb < self.MAX_BUCKETS:
                nb <<= 1
            self._rebuild(nb)

    def pop(self) -> tuple[float, int, Event]:
        active = self._active
        if not active:
            if not self._count:
                raise IndexError("pop from empty calendar queue")
            self._advance()
            active = self._active
        count = self._count - 1
        self._count = count
        if count < self._shrink_at and self._nbuckets > self.MIN_BUCKETS:
            entry = heappop(active)
            nb = self._nbuckets
            while count < nb // 4 and nb > self.MIN_BUCKETS:
                nb >>= 1
            self._rebuild(nb)
            return entry
        return heappop(active)

    def peek_time(self) -> float:
        active = self._active
        if not active:
            if not self._count:
                return _INF
            self._advance()
            active = self._active
        return active[0][0]

    def __len__(self) -> int:
        return self._count

    # -- internals --------------------------------------------------------
    def _harvest(self, k: int) -> bool:
        """Split year ``k``'s entries out of its bucket into ``_active``;
        returns whether any were found."""
        inv = self._inv_width
        i = k & self._mask
        bucket = self._buckets[i]
        due = [e for e in bucket if int(e[0] * inv) == k]
        if not due:
            return False
        if len(due) == len(bucket):
            bucket.clear()
        else:
            self._buckets[i] = [e for e in bucket if int(e[0] * inv) != k]
        heapify(due)
        self._active = due
        self._year = k
        return True

    def _advance(self) -> None:
        """Refill the active heap from the next non-empty bucket-year."""
        buckets = self._buckets
        mask = self._mask
        k = self._year
        for _ in range(self._nbuckets):
            k += 1
            if buckets[k & mask] and self._harvest(k):
                return
        # A full revolution found nothing due: the pending set is sparse
        # relative to the calendar span.  Jump straight to the earliest
        # entry's bucket-year.
        tmin = _INF
        for bucket in buckets:
            for e in bucket:
                if e[0] < tmin:
                    tmin = e[0]
        if tmin is _INF:
            raise IndexError("pop from empty calendar queue")
        self._harvest(int(tmin * self._inv_width))

    def _calibrate_width(
        self, entries: list[tuple[float, int, Event]]
    ) -> float:
        """Bucket width from observed inter-event gaps (Brown's rule,
        de-biased for stride sampling, targeting a handful of entries
        per bucket-year)."""
        n = len(entries)
        if n < 8:
            return self._width
        stride = max(1, n // 64)
        sample = sorted(entries[i][0] for i in range(0, n, stride))
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        gaps.sort()
        median = gaps[len(gaps) // 2] / stride
        return max(median * 8.0, 1e-9)

    def _rebuild(self, nbuckets: int) -> None:
        entries = self._active
        for bucket in self._buckets:
            if bucket:
                entries.extend(bucket)
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = nbuckets * 4
        self._shrink_at = nbuckets // 4
        buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(nbuckets)
        ]
        self._buckets = buckets
        if not entries:
            # Keep the year (width is unchanged with nothing to sample);
            # the next push or advance re-anchors naturally.
            self._active = []
            return
        width = self._calibrate_width(entries)
        self._width = width
        inv = 1.0 / width
        self._inv_width = inv
        tmin = min(e[0] for e in entries)
        k = int(tmin * inv)
        self._year = k
        mask = self._mask
        active: list[tuple[float, int, Event]] = []
        append = active.append
        for e in entries:
            if int(e[0] * inv) <= k:
                append(e)
            else:
                buckets[int(e[0] * inv) & mask].append(e)
        heapify(active)
        self._active = active


_SCHEDULERS = {"calendar": _CalendarQueue, "heap": _HeapQueue,
               "heapq": _HeapQueue}

#: Free-list bound: recycled Timeout events kept per environment.
_TIMEOUT_POOL_MAX = 4096

#: Weak registry of live environments + a creation counter, so the bench
#: harness can aggregate engine throughput for the envs one experiment
#: created (see repro.bench.harness.timer).
_env_registry: "weakref.WeakSet[Environment]" = weakref.WeakSet()
_env_next_stamp = 0


def env_generation() -> int:
    """Creation stamp the next Environment will receive (registry cursor)."""
    return _env_next_stamp


class EngineStats:
    """Kernel throughput snapshot; ``to_dict()`` plugs into
    :func:`repro.bench.reporting.stats_row` like any other stats object."""

    __slots__ = ("scheduler", "sim_events", "run_wall_s", "events_per_sec",
                 "peak_occupancy")

    def __init__(self, scheduler: str, sim_events: int, run_wall_s: float,
                 peak_occupancy: int) -> None:
        self.scheduler = scheduler
        self.sim_events = sim_events
        self.run_wall_s = run_wall_s
        self.events_per_sec = sim_events / run_wall_s if run_wall_s > 0 else 0.0
        self.peak_occupancy = peak_occupancy

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "sim_events": self.sim_events,
            "run_wall_s": self.run_wall_s,
            "events_per_sec": self.events_per_sec,
            "peak_occupancy": self.peak_occupancy,
        }


def aggregate_engine_stats(since: int = 0) -> Optional[EngineStats]:
    """Combined :class:`EngineStats` over live environments created at or
    after registry stamp ``since`` that have processed events; ``None``
    when there is nothing to report."""
    envs = [e for e in _env_registry
            if e._gen_stamp >= since and e._nevents]
    if not envs:
        return None
    schedulers = sorted({e.scheduler for e in envs})
    return EngineStats(
        scheduler="+".join(schedulers),
        sim_events=sum(e._nevents for e in envs),
        run_wall_s=sum(e._run_wall for e in envs),
        peak_occupancy=max(e._q.peak for e in envs),
    )


class Environment:
    """The simulation kernel: clock + scheduler + process registry.

    ``scheduler`` picks the queue implementation (``"calendar"`` or
    ``"heap"``); ``None`` reads ``REPRO_SIM_SCHEDULER`` and falls back to
    the calendar queue.
    """

    def __init__(
        self, initial_time: float = 0.0, scheduler: Optional[str] = None
    ) -> None:
        self._now = float(initial_time)
        self._seq = 0
        self._active_process: Optional[Process] = None
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SIM_SCHEDULER", "calendar")
        try:
            queue_cls = _SCHEDULERS[scheduler]
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {scheduler!r} "
                f"(expected one of {sorted(_SCHEDULERS)})"
            ) from None
        q = queue_cls(anchor=self._now)
        self._q = q
        self._qpush = q.push
        self._qpop = q.pop
        self._qpeek = q.peek_time
        #: Which scheduler implementation this kernel runs on.
        self.scheduler: str = q.name
        self._tpool: list[Timeout] = []
        self._nevents = 0
        self._run_wall = 0.0
        #: Optional event observer (see repro.sim.trace.Tracer.attach).
        self._tracer_obj = None
        # Pre-bound step: the untraced body has no observability branch
        # at all; attaching a tracer swaps in the traced body.
        self.step = self._step_untraced
        global _env_next_stamp
        self._gen_stamp = _env_next_stamp
        _env_next_stamp += 1
        _env_registry.add(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def _tracer(self):
        return self._tracer_obj

    @_tracer.setter
    def _tracer(self, value) -> None:
        self._tracer_obj = value
        self.step = self._step_untraced if value is None else self._step_traced

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq
        self._seq = seq + 1
        self._qpush(self._now + delay, seq, event)

    # -- public factories -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` from the free list (allocates only when the
        pool is dry)."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        pool = self._tpool
        if pool:
            evt = pool.pop()
            evt.callbacks = []
            evt._value = value
            evt._processed = False
            evt.delay = delay
        else:
            evt = Timeout.__new__(Timeout)
            evt.env = self
            evt.callbacks = []
            evt._ok = True
            evt._value = value
            evt._processed = False
            evt.delay = delay
        seq = self._seq
        self._seq = seq + 1
        self._qpush(self._now + delay, seq, evt)
        return evt

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def _step_untraced(self) -> None:
        """Process the next scheduled event (no tracer attached)."""
        try:
            t, _, event = self._qpop()
        except IndexError:
            raise DeadlockError("event queue is empty") from None
        if t < self._now:
            raise SimulationError("scheduled time is in the past")
        self._now = t
        self._nevents += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for cb in callbacks:
            cb(event)
        # Recycle delivered timeouts nobody else holds: the only live
        # references are our local and getrefcount's argument.
        if event.__class__ is Timeout and getrefcount(event) == 2:
            pool = self._tpool
            if len(pool) < _TIMEOUT_POOL_MAX:
                event._value = None
                pool.append(event)

    def _step_traced(self) -> None:
        """Process the next scheduled event through the tracer."""
        try:
            t, _, event = self._qpop()
        except IndexError:
            raise DeadlockError("event queue is empty") from None
        if t < self._now:
            raise SimulationError("scheduled time is in the past")
        self._now = t
        self._nevents += 1
        self._tracer_obj.observe(t, event)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if event.__class__ is Timeout and getrefcount(event) == 2:
            pool = self._tpool
            if len(pool) < _TIMEOUT_POOL_MAX:
                event._value = None
                pool.append(event)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._qpeek()

    def engine_stats(self) -> EngineStats:
        """Throughput counters for this kernel (events processed, wall
        seconds inside :meth:`run`, peak scheduler occupancy)."""
        return EngineStats(
            scheduler=self.scheduler,
            sim_events=self._nevents,
            run_wall_s=self._run_wall,
            peak_occupancy=self._q.peak,
        )

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the loop.

        * ``until=None``: run until the queue drains; returns ``None``.
        * numeric ``until``: run until simulated time reaches it.
        * ``until=event``: run until the event triggers; returns/raises the
          event's value.  Raises :class:`DeadlockError` if the queue drains
          first.
        """
        t0 = perf_counter()
        try:
            step = self.step
            if until is None:
                pending = self._q.__len__
                while pending():
                    step()
                return None
            if isinstance(until, Event):
                sentinel = until
                pending = self._q.__len__
                while not sentinel.triggered:
                    if not pending():
                        raise DeadlockError(
                            f"simulation ran dry before {sentinel!r} triggered"
                        )
                    step()
                if sentinel._ok:
                    return sentinel._value
                raise sentinel._value
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )
            peek = self._qpeek
            # Re-check the queue head after *every* step: a callback in
            # the final step may schedule new work at exactly the
            # deadline, and it must still run before the clock pins.
            while peek() <= deadline:
                step()
            self._now = deadline
            return None
        finally:
            self._run_wall += perf_counter() - t0


def run_sync(
    env: Environment, generator: Generator[Event, Any, Any], name: str = ""
) -> Any:
    """Run ``generator`` as a process to completion and return its value.

    Convenience for tests and for the synchronous client facade: drives
    the environment until the process finishes (other concurrently
    scheduled processes advance too).
    """
    proc = env.process(generator, name=name)
    return env.run(until=proc)
