"""Event tracing for the DES kernel.

Attach a :class:`Tracer` to an :class:`~repro.sim.engine.Environment` to
record every processed event — what fired, when, and which process it
belonged to.  Used to debug experiment hangs and to answer "what was the
simulation actually doing between t=3ms and t=5ms?".

Tracing is off unless a tracer is attached; the kernel stays zero-cost
for normal runs — literally zero branches, not just a cheap ``if``:
:meth:`Tracer.attach` swaps the environment's pre-bound ``step``
between its untraced and traced variants, so the untraced hot loop
never tests for a tracer at all (DESIGN.md §10).  :meth:`Tracer.detach`
swaps it back; note that recycled pooled ``Timeout`` objects make
object identity across trace records meaningless — use the record's
fields, not ``is`` comparisons.

Usage::

    env = Environment()
    tracer = Tracer.attach(env, capacity=100_000)
    ...run...
    print(tracer.summary())
    for rec in tracer.between(3e-3, 5e-3):
        print(rec)
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from repro.sim.engine import Environment, Event, Process, Timeout


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    name: str

    def __str__(self) -> str:
        return f"[{self.time:.9f}] {self.kind:<10} {self.name}"


class Tracer:
    """A bounded ring of processed-event records."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.total_events = 0
        self.dropped = 0

    @classmethod
    def attach(cls, env: Environment, capacity: int = 100_000) -> "Tracer":
        """Create a tracer and hook it into ``env``'s event loop."""
        tracer = cls(capacity)
        env._tracer = tracer
        return tracer

    @staticmethod
    def detach(env: Environment) -> None:
        env._tracer = None

    def observe(self, now: float, event: Event) -> None:
        kind = type(event).__name__
        if isinstance(event, Process):
            name = event.name
        elif isinstance(event, Timeout):
            name = f"delay={event.delay:g}"
        else:
            name = repr(event.__class__.__name__)
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(TraceRecord(now, kind, name))
        self.total_events += 1

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def between(self, t0: float, t1: float) -> Iterator[TraceRecord]:
        """Records with t0 <= time < t1 (within the retained window)."""
        for rec in self._records:
            if t0 <= rec.time < t1:
                yield rec

    def counts_by_kind(self) -> dict[str, int]:
        return dict(Counter(rec.kind for rec in self._records))

    def busiest(self, n: int = 10) -> list[tuple[str, int]]:
        """Most frequently firing event names (retained window)."""
        return Counter(
            f"{rec.kind}:{rec.name}" for rec in self._records
        ).most_common(n)

    def summary(self) -> str:
        lines = [
            f"traced {self.total_events} events "
            f"({self.dropped} dropped beyond the {self.capacity}-record window)"
        ]
        for kind, count in sorted(self.counts_by_kind().items()):
            lines.append(f"  {kind:<12} {count}")
        if self._records:
            lines.append(
                f"  window: t={self._records[0].time:.6f}"
                f" .. t={self._records[-1].time:.6f}"
            )
        return "\n".join(lines)
