"""Contention primitives: Resource, Container, Store.

These model the shared hardware and software capacities in the cluster:
a :class:`Resource` with capacity *k* is a k-server FIFO queueing station
(device queue depths, server worker pools, RPC service threads); a
:class:`Container` tracks a divisible quantity (memory bytes); a
:class:`Store` is a FIFO queue of Python objects (mailboxes, request
queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "granted", "cancelled")

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource
        self.granted = False
        self.cancelled = False


class Resource:
    """A FIFO multi-server resource.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or equivalently ``yield from resource.use(service_time)``.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        # Slot accounting mirrors the engine's Semaphore: a held count
        # plus a per-request grant flag, no shared user set to mutate on
        # every grant/release (the RPC worker-pool hot path).
        self._count = 0
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted slots."""
        return self._count

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self.env, self)
        if self._count < self.capacity:
            self._count += 1
            req.granted = True
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        if request.granted:
            return
        request.cancelled = True

    def abandon(self, request: Request) -> None:
        """Give a request up whatever its state: release if granted,
        withdraw if still queued.  The safe cleanup when a process is
        interrupted at ``yield request()`` (it cannot know whether the
        grant raced the interrupt).
        """
        if request.granted:
            self.release(request)
        else:
            request.cancelled = True

    def release(self, request: Request) -> None:
        if not request.granted:
            raise SimulationError("releasing a request that does not hold the resource")
        request.granted = False
        while self._queue:
            nxt = self._queue.popleft()
            if nxt.cancelled:
                continue
            # Hand the slot straight over: held count is unchanged.
            nxt.granted = True
            nxt.succeed()
            return
        self._count -= 1

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire one slot, hold it for ``duration``, release it."""
        req = self.request()
        try:
            yield req
        except BaseException:
            self.abandon(req)
            raise
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Container:
    """A divisible quantity with blocking get/put (e.g. bytes of memory)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been withdrawn."""
        if amount < 0:
            raise SimulationError("get amount must be non-negative")
        evt = Event(self.env)
        self._getters.append((evt, amount))
        self._settle()
        return evt

    def put(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been deposited."""
        if amount < 0:
            raise SimulationError("put amount must be non-negative")
        if amount > self.capacity:
            raise SimulationError("put amount exceeds container capacity")
        evt = Event(self.env)
        self._putters.append((evt, amount))
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                evt, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    evt.succeed()
                    progress = True
            if self._getters:
                evt, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    evt.succeed()
                    progress = True


class Store:
    """A FIFO queue of items with blocking get and optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        evt = Event(self.env)
        self._putters.append((evt, item))
        self._settle()
        return evt

    def get(self) -> Event:
        evt = Event(self.env)
        self._getters.append(evt)
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self._items) < self.capacity:
                evt, item = self._putters.popleft()
                self._items.append(item)
                evt.succeed()
                progress = True
            while self._getters and self._items:
                evt = self._getters.popleft()
                evt.succeed(self._items.popleft())
                progress = True
