"""A from-scratch discrete-event simulation (DES) kernel.

This package provides the simulated-time substrate for every performance
experiment in the reproduction: a SimPy-flavoured event loop with
generator-based processes, composable events, and contention primitives
(:class:`Resource`, :class:`Container`, :class:`Store`).

Why a DES?  The paper's results are *contention shapes* measured on a
16-node InfiniBand cluster — saturation of a metadata server, queueing on
NVMe devices, RPC round trips.  Re-measuring an in-process cache with
wall clocks would produce none of those shapes (see DESIGN.md §2), so the
system components execute their real logic while charging calibrated
simulated time for I/O and network work.

Typical usage::

    env = Environment()

    def reader(env, device):
        t0 = env.now
        yield from device.read(4096)
        return env.now - t0

    proc = env.process(reader(env, device))
    env.run()
    print(proc.value)
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Semaphore,
    Timeout,
    fan_out,
    run_sync,
)
from repro.sim.resources import Container, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Process",
    "Resource",
    "Semaphore",
    "Store",
    "Timeout",
    "fan_out",
    "run_sync",
]
